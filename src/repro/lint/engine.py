"""The lint engine: orchestrates parsing, shared passes, and rules.

Two entry points:

* :func:`lint_network` -- analyse an in-memory
  :class:`~repro.networks.network.ComparatorNetwork` (or anything with a
  ``to_network()`` method);
* :func:`lint_document` -- leniently parse a serialised network document
  (the :mod:`repro.networks.serialize` JSON format) so that *malformed
  files become located diagnostics instead of stack traces*, then run
  the semantic rules if the structure is sound.

Shared passes (the 0-1 abstract interpretation, the never-compared
witness scan, class recognition) are computed lazily and at most once
per lint run via :class:`LintContext`, so every rule reads cached
results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Sequence

from ..errors import ReproError, TopologyError
from ..networks.gates import Gate, Op
from ..networks.level import Level
from ..networks.network import ComparatorNetwork, Stage
from ..networks.permutations import Permutation
from .diagnostics import Diagnostic, Location, Severity
from .report import LintReport
from .rules import RULES, witness_scan

__all__ = ["LintConfig", "LintContext", "lint_network", "lint_document"]

_VALID_OPS = {op.value for op in Op}


@dataclass(frozen=True)
class LintConfig:
    """Tunables for one lint run.

    ``class_max_wires`` bounds the (comparatively expensive) class
    recognition pass; ``abstract_max_wires`` bounds the ``O(size * n)``
    abstract interpretation; ``witness_max_wires`` bounds the witness
    scan.  ``select`` optionally restricts to rules whose id starts
    with one of the given prefixes.  ``initial_bits`` optionally
    constrains input wires to abstract constants (see
    :class:`repro.lint.abstract.AbstractState`).
    """

    class_max_wires: int = 256
    abstract_max_wires: int = 4096
    witness_max_wires: int = 1 << 14
    max_reported_per_rule: int = 8
    select: tuple[str, ...] | None = None
    initial_bits: Sequence[Any] | None = None

    def rule_enabled(self, rule_id: str) -> bool:
        """True iff ``rule_id`` passes the ``select`` filter."""
        if not self.select:
            return True
        return any(rule_id.startswith(prefix) for prefix in self.select)


class LintContext:
    """Lazily-computed shared state handed to every rule."""

    def __init__(self, network: ComparatorNetwork, config: LintConfig):
        self.network = network
        self.config = config

    @cached_property
    def flattened(self) -> ComparatorNetwork:
        """The network with stage permutations folded away."""
        return self.network.flattened()

    @cached_property
    def abstract(self):
        """The 0-1 abstract interpretation outcome (``None`` if skipped)."""
        if self.network.n > self.config.abstract_max_wires:
            return None
        from .abstract import AbstractState, interpret

        initial = None
        if self.config.initial_bits is not None:
            initial = AbstractState.initial(
                self.network.n, bits=self.config.initial_bits
            )
        return interpret(self.network, initial=initial)

    @cached_property
    def witness(self) -> tuple[list[int], list[int]]:
        """Cached :func:`repro.lint.rules.witness_scan` result."""
        if self.network.n > self.config.witness_max_wires:
            return [], []
        return witness_scan(self.network)

    @cached_property
    def class_membership(self) -> tuple[str, Any]:
        """Class recognition result as ``(kind, payload)``.

        Kinds: ``"ok"`` (payload is the recognised
        :class:`~repro.networks.delta.IteratedReverseDeltaNetwork`),
        ``"fail"`` (payload is the :class:`~repro.errors.TopologyError`
        carrying level/gate location), ``"not-power-of-two"``, and
        ``"skipped"`` (payload is a human-readable reason).
        """
        n = self.network.n
        if n & (n - 1) or n < 1:
            return ("not-power-of-two", None)
        if n > self.config.class_max_wires:
            return (
                "skipped",
                f"class analysis skipped: n = {n} exceeds class_max_wires = "
                f"{self.config.class_max_wires}",
            )
        from ..core.attack import recognize_iterated_rdn

        try:
            return ("ok", recognize_iterated_rdn(self.network))
        except TopologyError as exc:
            return ("fail", exc)


def _coerce_network(obj: Any) -> ComparatorNetwork:
    """Accept a network or anything exposing ``to_network()``."""
    if isinstance(obj, ComparatorNetwork):
        return obj
    to_network = getattr(obj, "to_network", None)
    if callable(to_network):
        return to_network()
    raise ReproError(f"cannot lint objects of type {type(obj).__name__}")


def lint_network(
    network: Any,
    *,
    target: str = "",
    config: LintConfig | None = None,
) -> LintReport:
    """Run every enabled rule over a network and return the report.

    ``network`` may be a :class:`~repro.networks.network.
    ComparatorNetwork` or any object with a ``to_network()`` method
    (reverse delta trees, iterated networks, register programs).
    """
    net = _coerce_network(network)
    cfg = config or LintConfig()
    ctx = LintContext(net, cfg)
    diagnostics: list[Diagnostic] = []
    for rule in RULES.values():
        if not cfg.rule_enabled(rule.id):
            continue
        diagnostics.extend(rule.check(ctx))
    diagnostics.sort(key=lambda d: d.sort_key)
    return LintReport(
        target=target or repr(net),
        n=net.n,
        depth=net.depth,
        size=net.size,
        diagnostics=diagnostics,
        network=net,
    )


# ---------------------------------------------------------------------------
# lenient document linting


def _parse_diag(rule: str, message: str, **loc: Any) -> Diagnostic:
    """Shorthand for a parse-stage error diagnostic."""
    return Diagnostic(
        rule=rule,
        severity=Severity.ERROR,
        message=message,
        location=Location(**loc),
    )


def _lint_raw_stage(
    si: int, entry: Any, n: int, diagnostics: list[Diagnostic]
) -> Stage | None:
    """Validate one raw stage entry, emitting located diagnostics.

    Returns the constructed :class:`Stage` when clean, else ``None``.
    """
    if not isinstance(entry, dict) or not isinstance(entry.get("gates"), list):
        diagnostics.append(
            _parse_diag(
                "parse/stage-malformed",
                "stage entry must be an object with a 'gates' list",
                stage=si,
            )
        )
        return None
    gates: list[Gate] = []
    seen_wires: dict[int, int] = {}
    ok = True
    for gi, item in enumerate(entry["gates"]):
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 3
            or not all(isinstance(x, int) for x in item[:2])
            or not isinstance(item[2], str)
        ):
            diagnostics.append(
                _parse_diag(
                    "parse/gate-malformed",
                    f"gate entry {item!r} is not a [wire, wire, op] triple",
                    stage=si,
                    comparator=gi,
                )
            )
            ok = False
            continue
        a, b, op = item
        if op not in _VALID_OPS:
            diagnostics.append(
                _parse_diag(
                    "parse/gate-malformed",
                    f"unknown gate op {op!r}; expected one of '+', '-', '0', '1'",
                    stage=si,
                    comparator=gi,
                )
            )
            ok = False
            continue
        if a == b or a < 0 or b < 0 or a >= n or b >= n:
            diagnostics.append(
                _parse_diag(
                    "parse/wire-range",
                    f"gate endpoints ({a}, {b}) must be distinct wires in "
                    f"[0, {n})",
                    stage=si,
                    comparator=gi,
                    wires=(a, b),
                )
            )
            ok = False
            continue
        for w in (a, b):
            if w in seen_wires:
                diagnostics.append(
                    _parse_diag(
                        "parse/duplicate-wire",
                        f"wire {w} is touched by gates {seen_wires[w]} and "
                        f"{gi} of the same level; level gates must act on "
                        "disjoint wires",
                        stage=si,
                        comparator=gi,
                        wires=(w,),
                    )
                )
                ok = False
        if ok:
            seen_wires[a] = gi
            seen_wires[b] = gi
            gates.append(Gate(a, b, Op.from_str(op)))
    perm = None
    if "perm" in entry:
        raw_perm = entry["perm"]
        if (
            not isinstance(raw_perm, list)
            or len(raw_perm) != n
            or not all(isinstance(x, int) for x in raw_perm)
            or sorted(raw_perm) != list(range(n))
        ):
            diagnostics.append(
                _parse_diag(
                    "parse/bad-permutation",
                    f"stage permutation is not a bijection on range({n})",
                    stage=si,
                )
            )
            ok = False
        else:
            perm = Permutation(raw_perm)
    if not ok:
        return None
    return Stage(level=Level(gates), perm=perm)


def lint_document(
    document: str | dict[str, Any],
    *,
    target: str = "",
    config: LintConfig | None = None,
) -> LintReport:
    """Lint a serialised network document, leniently.

    Structural problems (malformed gates, out-of-range wires, two gates
    sharing a wire in one level, invalid stage permutations, bad
    version envelopes) become located ``parse/*`` diagnostics rather
    than exceptions.  If -- and only if -- the document is structurally
    sound, the semantic rule set of :func:`lint_network` runs on the
    reconstructed network.
    """
    from ..networks import serialize

    cfg = config or LintConfig()

    def failed(diags: list[Diagnostic]) -> LintReport:
        diags.sort(key=lambda d: d.sort_key)
        return LintReport(
            target=target or "<document>",
            n=0,
            depth=0,
            size=0,
            diagnostics=diags,
        )

    if isinstance(document, str):
        try:
            doc = json.loads(document)
        except json.JSONDecodeError as exc:
            return failed([_parse_diag("parse/json", f"invalid JSON: {exc}")])
    else:
        doc = document
    if not isinstance(doc, dict) or doc.get("version") != serialize.FORMAT_VERSION:
        return failed(
            [
                _parse_diag(
                    "parse/version",
                    "document must be an object with version = "
                    f"{serialize.FORMAT_VERSION}",
                )
            ]
        )
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        return failed([_parse_diag("parse/structure", "missing payload object")])
    kind = payload.get("kind")
    if kind != "network":
        # tree-shaped kinds have no lenient form; deserialise strictly
        try:
            obj = serialize.loads(json.dumps(doc))
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            return failed(
                [
                    _parse_diag(
                        "parse/structure",
                        f"cannot deserialise payload kind {kind!r}: {exc}",
                    )
                ]
            )
        return lint_network(obj, target=target, config=cfg)
    n = payload.get("n")
    if not isinstance(n, int) or n < 1:
        return failed(
            [_parse_diag("parse/structure", f"invalid wire count n = {n!r}")]
        )
    raw_stages = payload.get("stages")
    if not isinstance(raw_stages, list):
        return failed([_parse_diag("parse/structure", "'stages' must be a list")])
    diagnostics: list[Diagnostic] = []
    stages: list[Stage] = []
    for si, entry in enumerate(raw_stages):
        stage = _lint_raw_stage(si, entry, n, diagnostics)
        if stage is not None:
            stages.append(stage)
    if diagnostics:
        return failed(diagnostics)
    net = ComparatorNetwork(n, stages)
    return lint_network(net, target=target, config=cfg)
