"""repro.lint -- rule-based static analysis of comparator networks.

The paper proves non-sorting *statically*: it never evaluates a network
on all inputs, it reasons about structure.  This subpackage applies the
same stance as developer tooling: a registry of lint rules
(:mod:`repro.lint.rules`) over a 0-1 abstract interpretation
(:mod:`repro.lint.abstract`), structured diagnostics with locations and
fix-its (:mod:`repro.lint.diagnostics`), behaviour-preserving repairs
(:mod:`repro.lint.fixes`), and uniform reports
(:mod:`repro.lint.report`).  The CLI front-end is
``python -m repro lint``.

Quickstart::

    from repro.lint import lint_network, apply_fixes
    from repro.sorters.bitonic import bitonic_sorting_network

    report = lint_network(bitonic_sorting_network(16).truncated(3))
    print(report.format_text())          # located errors: cannot sort
    assert report.has_errors

    fixed = apply_fixes(report.network, report.diagnostics)
"""

from .abstract import AbstractBit, AbstractOutcome, AbstractState, interpret
from .diagnostics import Diagnostic, FixIt, Location, Severity
from .engine import LintConfig, LintContext, lint_document, lint_network
from .fixes import apply as apply_fixes
from .report import LintReport
from .rules import RULES, LintRule, corollary_4_1_1_refutes, witness_scan

__all__ = [
    "AbstractBit",
    "AbstractOutcome",
    "AbstractState",
    "interpret",
    "Diagnostic",
    "FixIt",
    "Location",
    "Severity",
    "LintConfig",
    "LintContext",
    "lint_document",
    "lint_network",
    "apply_fixes",
    "LintReport",
    "RULES",
    "LintRule",
    "corollary_4_1_1_refutes",
    "witness_scan",
]
