"""Structured diagnostics emitted by the network analyzer.

The generic pieces -- :class:`~repro.diagnostics.Severity`,
:class:`~repro.diagnostics.FixIt`, the :class:`Diagnostic` record and
its rendering/ordering -- live in :mod:`repro.diagnostics`, shared with
the source-tree analyzer :mod:`repro.sanitize` so the two cannot drift.
This module contributes the network-specific :class:`Location` (stage
index, comparator index within the stage, wire ids) and a
:class:`Diagnostic` subclass that defaults its location to an empty
network location, preserving the historical ``diag.location.stage``
access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..diagnostics import Diagnostic as _BaseDiagnostic
from ..diagnostics import FixIt, Severity

__all__ = ["Severity", "Location", "FixIt", "Diagnostic"]


@dataclass(frozen=True)
class Location:
    """Where in the network a diagnostic points.

    All fields are optional: a size-budget finding has no stage, a
    malformed-document finding may know the stage but not the wires.
    ``stage`` is the stage (level) index in execution order;
    ``comparator`` is the gate index within that stage's level;
    ``wires`` are the wire/position ids involved.
    """

    stage: int | None = None
    comparator: int | None = None
    wires: tuple[int, ...] = ()

    def format(self) -> str:
        """Render like ``stage 3, gate 1, wires (4, 5)`` (or ``-``)."""
        parts = []
        if self.stage is not None:
            parts.append(f"stage {self.stage}")
        if self.comparator is not None:
            parts.append(f"gate {self.comparator}")
        if self.wires:
            parts.append(f"wires ({', '.join(str(w) for w in self.wires)})")
        return ", ".join(parts) if parts else "-"

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible dict (omits unset fields)."""
        doc: dict[str, Any] = {}
        if self.stage is not None:
            doc["stage"] = self.stage
        if self.comparator is not None:
            doc["comparator"] = self.comparator
        if self.wires:
            doc["wires"] = list(self.wires)
        return doc

    @property
    def sort_key(self) -> tuple[int, int]:
        """Report order within a severity: stage, then gate."""
        return (
            self.stage if self.stage is not None else -1,
            self.comparator if self.comparator is not None else -1,
        )


@dataclass(frozen=True)
class Diagnostic(_BaseDiagnostic):
    """One finding of one lint rule, located in network coordinates."""

    location: Location = field(default_factory=Location)
