"""Structured diagnostics emitted by the static analyzer.

A :class:`Diagnostic` is one finding of one lint rule: a severity, a
human-readable message, an optional :class:`Location` (stage index,
comparator index within the stage, wire ids) and an optional
:class:`FixIt` describing a behaviour-preserving repair.  Diagnostics
are plain immutable data so they can be collected, sorted, serialised
to JSON, attached to exceptions (:class:`repro.errors.LintError`) and
rendered uniformly by the CLI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


__all__ = ["Severity", "Location", "FixIt", "Diagnostic"]


class Severity(enum.Enum):
    """How serious a diagnostic is.

    ``ERROR``
        The network provably cannot be a sorting network (or the input
        document is malformed); linting exits non-zero.
    ``WARNING``
        Suspicious but not disqualifying (e.g. a provably-redundant
        comparator, or falling outside the paper's shuffle-based class).
    ``INFO``
        Neutral facts worth surfacing (class membership, empty levels).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank for sorting: errors first, infos last."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Location:
    """Where in the network a diagnostic points.

    All fields are optional: a size-budget finding has no stage, a
    malformed-document finding may know the stage but not the wires.
    ``stage`` is the stage (level) index in execution order;
    ``comparator`` is the gate index within that stage's level;
    ``wires`` are the wire/position ids involved.
    """

    stage: int | None = None
    comparator: int | None = None
    wires: tuple[int, ...] = ()

    def format(self) -> str:
        """Render like ``stage 3, gate 1, wires (4, 5)`` (or ``-``)."""
        parts = []
        if self.stage is not None:
            parts.append(f"stage {self.stage}")
        if self.comparator is not None:
            parts.append(f"gate {self.comparator}")
        if self.wires:
            parts.append(f"wires ({', '.join(str(w) for w in self.wires)})")
        return ", ".join(parts) if parts else "-"

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible dict (omits unset fields)."""
        doc: dict[str, Any] = {}
        if self.stage is not None:
            doc["stage"] = self.stage
        if self.comparator is not None:
            doc["comparator"] = self.comparator
        if self.wires:
            doc["wires"] = list(self.wires)
        return doc


@dataclass(frozen=True)
class FixIt:
    """A behaviour-preserving repair suggested by a rule.

    ``removals`` lists ``(stage_index, gate_index)`` pairs of gates that
    can be deleted without changing the network's output on any 0-1
    input (and hence, by the threshold argument behind the 0-1
    principle, on any input at all).  :func:`repro.lint.fixes.apply`
    consumes these.
    """

    description: str
    removals: tuple[tuple[int, int], ...] = ()

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible dict."""
        return {
            "description": self.description,
            "removals": [list(r) for r in self.removals],
        }


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule.

    ``rule`` is the registry id (e.g. ``"abstract/redundant-comparator"``);
    ``severity``, ``message`` and ``location`` describe the finding;
    ``fix`` optionally carries a safe repair.
    """

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    fix: FixIt | None = None

    def format(self) -> str:
        """One-line rendering: ``error[rule] location: message``."""
        loc = self.location.format()
        prefix = f"{self.severity.value}[{self.rule}]"
        if loc != "-":
            return f"{prefix} {loc}: {self.message}"
        return f"{prefix}: {self.message}"

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible dict mirroring :meth:`format`'s content."""
        doc: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_json(),
        }
        if self.fix is not None:
            doc["fix"] = self.fix.to_json()
        return doc

    @property
    def sort_key(self) -> tuple[int, int, int, str]:
        """Order: severity rank, then stage, then gate, then rule id."""
        loc = self.location
        return (
            self.severity.rank,
            loc.stage if loc.stage is not None else -1,
            loc.comparator if loc.comparator is not None else -1,
            self.rule,
        )
