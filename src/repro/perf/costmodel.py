"""The static cost model: effective loop depth through the call graph.

Per-function, an AST walk assigns every statement and expression its
*local* loop depth -- how many ``for``/``while`` bodies (and
comprehension generators) lexically enclose it.  That alone cannot see
that a depth-0 helper is hot when its only caller invokes it from a
doubly-nested loop, so the model propagates nesting through the
:class:`~repro.flow.graph.Program` call edges to a fixpoint:

.. math::

    entry(f) = \\max_{(g \\to f) \\in E} \\bigl( entry(g) + depth_g(site) \\bigr)

where :math:`depth_g(site)` is the local depth of the call site inside
``g``.  The *effective* depth of a statement in ``f`` is then
``entry(f)`` plus its local depth -- a depth-1 helper called inside a
depth-2 loop is effectively depth-3.  Recursion is handled by capping
the entry depth (``DEPTH_CAP``), which makes the iteration a monotone
map on a finite lattice and hence convergent.

Reference (``kind == "ref"``) edges count like calls: a function passed
to ``map``/``set_defaults``/a dispatch table from inside a loop is
presumed to run there.  Callers outside the analysed program (module
bodies, the test suite) contribute entry depth 0.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..flow.graph import Program

__all__ = ["DEPTH_CAP", "FunctionCost", "CostModel", "build_cost_model"]

#: Entry depths saturate here so recursive cycles converge; no real
#: loop nest in the tree comes close.
DEPTH_CAP = 8

#: AST nodes that open one loop level for their body.
_LOOPS = (ast.For, ast.AsyncFor, ast.While)

#: Comprehension nodes; each generator is one loop level.
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


@dataclass
class FunctionCost:
    """The cost facts for one indexed function.

    ``depth_by_line`` maps source lines to the *maximum* local loop
    depth of any node starting there (call sites are looked up through
    it); ``local_depth`` is the deepest nesting in the body;
    ``entry_depth`` is the propagated call-context depth.
    """

    qualname: str
    local_depth: int = 0
    entry_depth: int = 0
    depth_by_line: dict[int, int] = field(default_factory=dict)

    def depth_at(self, line: int | None) -> int:
        """Local loop depth of the node at ``line`` (0 when unknown)."""
        if line is None:
            return 0
        return self.depth_by_line.get(line, 0)

    def effective_at(self, line: int | None) -> int:
        """Entry depth plus the local depth at ``line``."""
        return self.entry_depth + self.depth_at(line)


@dataclass
class CostModel:
    """Per-function costs plus the headline hot-function count."""

    functions: dict[str, FunctionCost] = field(default_factory=dict)

    def effective_depth(self, qualname: str, line: int | None = None) -> int:
        """Effective depth of a site, 0 for functions outside the model."""
        cost = self.functions.get(qualname)
        if cost is None:
            return 0
        return cost.effective_at(line)

    def hot_functions(self, threshold: int = 2) -> list[str]:
        """Functions whose deepest site reaches ``threshold``, sorted."""
        return sorted(
            q
            for q, cost in self.functions.items()
            if cost.entry_depth + cost.local_depth >= threshold
        )


class _DepthWalker(ast.NodeVisitor):
    """Annotate every node of one function body with its loop depth.

    Nested ``def``/``lambda`` bodies run when *called*, not where they
    are defined, so they reset to depth 0 (their own call edges carry
    the context instead).  A loop's iterable/test evaluates once per
    entry at the loop's own depth; only the body is one level deeper.
    """

    def __init__(self, cost: FunctionCost) -> None:
        self.cost = cost
        self.depth = 0

    def _mark(self, node: ast.AST) -> None:
        line = getattr(node, "lineno", None)
        if line is None:
            return
        by_line = self.cost.depth_by_line
        if self.depth > by_line.get(line, -1):
            by_line[line] = self.depth
        if self.depth > self.cost.local_depth:
            self.cost.local_depth = self.depth

    def visit(self, node: ast.AST) -> None:
        self._mark(node)
        super().visit(node)

    def _visit_loop(self, node: ast.For | ast.AsyncFor | ast.While) -> None:
        if isinstance(node, ast.While):
            self.visit(node.test)
        else:
            self.visit(node.target)
            self.visit(node.iter)
        self.depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def _visit_comprehension(self, node: ast.expr) -> None:
        self._mark(node)
        levels = len(node.generators)  # type: ignore[attr-defined]
        for gen in node.generators:  # type: ignore[attr-defined]
            self.visit(gen.iter)
        self.depth += levels
        for gen in node.generators:  # type: ignore[attr-defined]
            self.visit(gen.target)
            for cond in gen.ifs:
                self.visit(cond)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)  # type: ignore[attr-defined]
        self.depth -= levels

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _visit_nested(self, node: ast.AST) -> None:
        self._mark(node)
        saved, self.depth = self.depth, 0
        self.generic_visit(node)
        self.depth = saved

    visit_FunctionDef = _visit_nested
    visit_AsyncFunctionDef = _visit_nested
    visit_Lambda = _visit_nested


def _local_costs(program: Program) -> dict[str, FunctionCost]:
    costs: dict[str, FunctionCost] = {}
    for qualname in sorted(program.functions):
        finfo = program.functions[qualname]
        cost = FunctionCost(qualname=qualname)
        walker = _DepthWalker(cost)
        for stmt in finfo.node.body:
            walker.visit(stmt)
        costs[qualname] = cost
    return costs


def build_cost_model(program: Program) -> CostModel:
    """Local depths per function, then the entry-depth fixpoint."""
    costs = _local_costs(program)
    # Chaotic iteration over the (sorted) call edges: entry depths only
    # ever grow and are capped, so this terminates; the max-combine
    # makes the result independent of edge order.
    changed = True
    while changed:
        changed = False
        for edge in program.edges:
            callee = costs.get(edge.callee)
            if callee is None:
                continue
            caller = costs.get(edge.caller)
            if caller is None:
                continue  # module-level or foreign caller: entry 0
            candidate = min(
                DEPTH_CAP, caller.effective_at(edge.line)
            )
            if candidate > callee.entry_depth:
                callee.entry_depth = candidate
                changed = True
    return CostModel(functions=costs)
