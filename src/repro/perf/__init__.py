"""Profile-guided hot-path analysis for the repro tree itself.

The fourth analyzer family.  Where :mod:`repro.lint` checks networks,
:mod:`repro.sanitize` checks files and :mod:`repro.flow` checks
call-chain invariants, this package answers the performance question
the vectorization arc needs answered systematically: *which scalar
Python loops actually sit on hot paths, and in what order should they
be vectorised?*

Layering (docs/PERF.md):

* :mod:`repro.perf.costmodel` -- static *effective loop depth*: local
  nesting per function, propagated through the
  :class:`~repro.flow.graph.Program` call edges to a fixpoint (a
  depth-1 helper called inside a depth-2 loop is effectively depth-3);
* :mod:`repro.perf.rules` -- the ``perf/*`` rule catalog of
  vectorizable antipatterns, each firing only at effective depth >= 2
  so cold code stays quiet;
* :mod:`repro.perf.profilejoin` -- joining measured
  :mod:`repro.obs` span self-times (or CPU profile rows) onto the call
  graph, re-ranking findings by observed hot-path weight;
* :mod:`repro.perf.worklist` -- the versioned ranked vectorization
  worklist (``repro perf --worklist``), which deliberately ignores
  pragma/baseline waivers: it is the inventory of remaining work;
* :mod:`repro.perf.engine` -- discovery, baseline and pragma wiring,
  report assembly;
* :mod:`repro.perf.report` -- the versioned report.

Run it as ``repro perf src/`` (add ``--profile trace.jsonl`` for
observed ranking) or fold it into a sanitize run with
``repro sanitize --perf src/``.
"""

from .costmodel import CostModel, FunctionCost, build_cost_model
from .engine import PerfConfig, analyze_paths, build_analysis, worklist_paths
from .profilejoin import ProfileJoin, join_profile, load_profile, span_owners
from .report import PERF_FORMAT, PerfReport
from .rules import HOT_DEPTH, PERF_RULES, PerfAnalysis
from .worklist import WORKLIST_FORMAT, Worklist, WorklistEntry, build_worklist

__all__ = [
    "CostModel",
    "FunctionCost",
    "build_cost_model",
    "PerfConfig",
    "analyze_paths",
    "build_analysis",
    "worklist_paths",
    "ProfileJoin",
    "join_profile",
    "load_profile",
    "span_owners",
    "PERF_FORMAT",
    "PerfReport",
    "HOT_DEPTH",
    "PERF_RULES",
    "PerfAnalysis",
    "WORKLIST_FORMAT",
    "Worklist",
    "WorklistEntry",
    "build_worklist",
]
