"""The perf engine: discovery, analysis, worklist, report assembly.

Entry points :func:`analyze_paths` and :func:`worklist_paths` mirror
:func:`repro.flow.engine.analyze_paths` -- deterministic (sorted) file
discovery, the ratcheted baseline, ``# sanitize: ok`` pragma
suppression -- over the same whole-program unit: every parseable file
joins one :class:`~repro.flow.graph.Program`, the effective-depth
fixpoint runs once, and each rule reads the global result.

The two entry points differ in what they suppress: the *report* honours
pragmas and the baseline (the ratchet: the tree must stay at zero new
findings), while the *worklist* ranks every raw finding -- it is the
inventory of remaining vectorization work, so waived findings stay
listed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..diagnostics import Baseline, apply_waivers
from ..sanitize.diagnostics import Diagnostic
from ..sanitize.engine import discover_files
from .report import PerfReport
from .rules import HOT_DEPTH, PERF_RULES, PerfAnalysis
from .profilejoin import ProfileJoin, join_profile
from .worklist import Worklist, build_worklist

__all__ = ["PerfConfig", "analyze_paths", "worklist_paths", "build_analysis"]


@dataclass(frozen=True)
class PerfConfig:
    """Tunables for one perf run.

    ``select`` optionally restricts to rules whose id starts with one
    of the given prefixes, mirroring the other analyzer configs;
    ``profile`` optionally names a trace JSONL / profile document to
    join for observed hot-path ranking.
    """

    select: tuple[str, ...] | None = None
    profile: str | None = None

    def rule_enabled(self, rule_id: str) -> bool:
        """True iff ``rule_id`` passes the ``select`` filter."""
        if not self.select:
            return True
        return any(rule_id.startswith(prefix) for prefix in self.select)


def build_analysis(
    paths: Iterable[str | Path], config: PerfConfig | None = None
) -> tuple[PerfAnalysis, list[Diagnostic], int]:
    """Build the program, cost model and (optional) profile join.

    Returns the analysis, the raw rule findings (plus parse
    diagnostics), and the number of analysed files.
    """
    from ..flow.engine import _load_contexts
    from ..flow.graph import Program

    cfg = config or PerfConfig()
    files = discover_files(paths)
    contexts, diagnostics = _load_contexts(files)
    program = Program.build(contexts)
    join: ProfileJoin | None = None
    if cfg.profile is not None:
        join = join_profile(program, cfg.profile)
    analysis = PerfAnalysis.build(program, join=join)
    for rule in PERF_RULES.values():
        if not cfg.rule_enabled(rule.id):
            continue
        diagnostics.extend(rule.check(analysis))
    return analysis, diagnostics, len(files)


def analyze_paths(
    paths: Iterable[str | Path],
    config: PerfConfig | None = None,
    baseline: Baseline | None = None,
) -> PerfReport:
    """Analyse a set of files/directories; pragmas and baseline apply.

    Pragma-suppressed findings are dropped silently (the pragma is the
    documented waiver); baseline-matched findings are dropped from the
    report and exit code but counted in ``report.suppressed`` so a
    grandfathered tree never reads as clean.
    """
    analysis, diagnostics, files = build_analysis(paths, config)
    program = analysis.program
    kept, suppressed = apply_waivers(
        diagnostics, program.contexts, baseline
    )
    join = analysis.join
    return PerfReport(
        targets=sorted(str(p) for p in paths),
        files=files,
        functions=len(program.functions),
        hot=len(analysis.cost.hot_functions(HOT_DEPTH)),
        profile=join.source if join is not None else None,
        diagnostics=kept,
        suppressed=suppressed,
    )


def worklist_paths(
    paths: Iterable[str | Path], config: PerfConfig | None = None
) -> Worklist:
    """The ranked vectorization worklist (ignores pragmas and baseline)."""
    analysis, diagnostics, _files = build_analysis(paths, config)
    findings = [d for d in diagnostics if d.rule.startswith("perf/")]
    return build_worklist(analysis, findings, [str(p) for p in paths])
