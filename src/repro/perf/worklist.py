"""The ranked vectorization worklist (``repro perf --worklist``).

The worklist is the *inventory* view of the perf analysis: every raw
finding, ranked, with its effective depth and observed weight --
deliberately ignoring pragma waivers and the baseline, because a
grandfathered scalar loop is still work to do.  Ranking is observed
hot-path weight first (when a profile was joined), then effective loop
depth, then a deterministic source-order tiebreak, so two runs over the
same tree emit bit-identical documents.

``WORKLIST_FORMAT`` versions the document; the two dataclasses below
are pinned in the sanitize schema fingerprint registry like every
other persisted format in the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..sanitize.diagnostics import Diagnostic
from .rules import PerfAnalysis

__all__ = ["WORKLIST_FORMAT", "WorklistEntry", "Worklist", "build_worklist"]

#: Version of the worklist JSON document.
WORKLIST_FORMAT = 1


@dataclass
class WorklistEntry:
    """One ranked vectorization candidate."""

    rank: int
    function: str
    path: str
    line: int
    rule: str
    effective_depth: int
    weight: float
    message: str

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible entry document."""
        return {
            "rank": self.rank,
            "function": self.function,
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "effective_depth": self.effective_depth,
            "weight": self.weight,
            "message": self.message,
        }


@dataclass
class Worklist:
    """The full ranked worklist for one analysed tree."""

    targets: list[str] = field(default_factory=list)
    profile: str | None = None
    entries: list[WorklistEntry] = field(default_factory=list)
    unmatched_spans: list[str] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible worklist document (versioned)."""
        return {
            "format": WORKLIST_FORMAT,
            "targets": self.targets,
            "profile": self.profile,
            "unmatched_spans": self.unmatched_spans,
            "entries": [e.to_json() for e in self.entries],
        }


def _owner(analysis: PerfAnalysis, diag: Diagnostic) -> str:
    """Qualname of the function containing a diagnostic's location."""
    path = getattr(diag.location, "path", None)
    line = getattr(diag.location, "line", None) or 0
    best, best_line = "", -1
    for qualname, finfo in analysis.program.functions.items():
        if finfo.path == path and best_line < finfo.line <= line:
            best, best_line = qualname, finfo.line
    return best


def build_worklist(
    analysis: PerfAnalysis,
    diagnostics: list[Diagnostic],
    targets: list[str],
) -> Worklist:
    """Rank the raw findings into the vectorization worklist."""
    rows = []
    for diag in diagnostics:
        qualname = _owner(analysis, diag)
        line = getattr(diag.location, "line", None) or 0
        depth = analysis.cost.effective_depth(qualname, line)
        rows.append(
            (
                -analysis.weight(qualname),
                -depth,
                getattr(diag.location, "path", "") or "",
                line,
                diag.rule,
                qualname,
                diag,
            )
        )
    rows.sort(key=lambda r: r[:6])
    entries = [
        WorklistEntry(
            rank=i + 1,
            function=qualname,
            path=path,
            line=line,
            rule=rule,
            effective_depth=-neg_depth,
            weight=-neg_weight,
            message=diag.message,
        )
        for i, (neg_weight, neg_depth, path, line, rule, qualname, diag)
        in enumerate(rows)
    ]
    join = analysis.join
    return Worklist(
        targets=sorted(targets),
        profile=join.source if join is not None else None,
        entries=entries,
        unmatched_spans=sorted(join.unmatched) if join is not None else [],
    )
