"""The perf rule catalog: vectorizable antipatterns on hot paths.

Mirrors the registry shape of :mod:`repro.flow.rules` (stable
``perf/name`` ids, severity, one-line summary), but each rule reads a
:class:`PerfAnalysis` -- the built program, the effective-depth cost
model, and (optionally) the profile join.  Every rule fires only at
effective loop depth >= :data:`HOT_DEPTH`, so cold code stays quiet no
matter how scalar it is.

``perf/scalar-loop-over-wires``
    A per-element Python ``for`` over a positionally-indexed sequence
    (``range``/``enumerate`` iteration, or loop-variable subscripts in
    the body): the shape NumPy gather/scatter/min/max replaces.
``perf/membership-in-loop``
    ``x in seq`` against a locally-built ``list``/``tuple`` inside a
    loop: O(n) per probe where a ``set`` or a boolean mask is O(1).
``perf/append-accumulator``
    Element-wise ``.append`` into a locally-initialised empty list:
    the builder loop a vectorised expression or ``fromiter`` replaces.
``perf/repeated-recompute-in-loop``
    A pure call (``sorted``/``min``/``max``/``sum``/``math.*``/
    ``numpy.*``) whose arguments are loop-invariant, evaluated on every
    iteration instead of hoisted.
``perf/copy-in-loop``
    A container copy (``.copy()``, ``list(x)``/``dict(x)``/
    ``tuple(x)``/``set(x)``, ``np.array``, ``x[:]``) inside a loop:
    O(n) allocation per iteration.
``perf/attr-lookup-in-hot-loop``
    The same loop-invariant attribute chain read three or more times
    inside one loop body: hoist to a local.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..flow.graph import FunctionInfo, Program
from ..sanitize.diagnostics import Diagnostic, Severity, SourceLocation
from .costmodel import CostModel, build_cost_model
from .profilejoin import ProfileJoin

__all__ = [
    "HOT_DEPTH",
    "PerfRule",
    "PERF_RULES",
    "perf_rule",
    "PerfAnalysis",
]

#: Rules only fire at effective loop depth >= this.
HOT_DEPTH = 2


@dataclass
class PerfAnalysis:
    """The program plus everything the perf rules read."""

    program: Program
    cost: CostModel
    join: ProfileJoin | None = None

    @classmethod
    def build(
        cls, program: Program, join: ProfileJoin | None = None
    ) -> "PerfAnalysis":
        return cls(program=program, cost=build_cost_model(program), join=join)

    def weight(self, qualname: str) -> float:
        """Observed hot-path weight in seconds (0.0 without a profile)."""
        if self.join is None:
            return 0.0
        return self.join.weights.get(qualname, 0.0)


@dataclass(frozen=True)
class PerfRule:
    """One registered rule: id, default severity, summary, checker."""

    id: str
    severity: Severity
    summary: str
    check: Callable[[PerfAnalysis], Iterable[Diagnostic]]


#: The global registry, keyed by rule id, in registration order.
PERF_RULES: dict[str, PerfRule] = {}


def perf_rule(
    rule_id: str, severity: Severity, summary: str
) -> Callable[[Callable[[PerfAnalysis], Iterable[Diagnostic]]], Callable]:
    """Decorator registering a rule function under ``rule_id``."""

    def register(
        fn: Callable[[PerfAnalysis], Iterable[Diagnostic]],
    ) -> Callable:
        PERF_RULES[rule_id] = PerfRule(
            id=rule_id, severity=severity, summary=summary, check=fn
        )
        return fn

    return register


# ---------------------------------------------------------------------------
# shared walking machinery


@dataclass
class _Loop:
    """One lexical loop: the node, its body depth, what it binds."""

    node: ast.For | ast.AsyncFor | ast.While
    body_depth: int  # local depth inside the body
    bound: set[str] = field(default_factory=set)


def _bound_names(node: ast.AST) -> Iterator[str]:
    """Every name a statement subtree binds (targets, withitems, defs)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            yield sub.id
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield sub.name
        elif isinstance(sub, ast.alias):
            yield (sub.asname or sub.name).split(".")[0]


def _iter_loops(
    finfo: FunctionInfo,
) -> Iterator[tuple[_Loop, list[_Loop]]]:
    """Yield ``(loop, enclosing_stack)`` for every loop, outermost first.

    The stack includes the yielded loop itself (innermost last); nested
    ``def``/``lambda`` bodies are not descended into, matching the cost
    model's treatment of definition sites.
    """

    def walk(node: ast.AST, depth: int, stack: list[_Loop]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                loop = _Loop(node=child, body_depth=depth + 1)
                loop.bound.update(_bound_names(child))
                yield loop, stack + [loop]
                yield from walk(child, depth + 1, stack + [loop])
            else:
                yield from walk(child, depth, stack)

    yield from walk(finfo.node, 0, [])


def _loop_body_walk(loop: _Loop) -> Iterator[ast.AST]:
    """Every node in the loop body that runs at *this* loop's depth.

    Nested loops are not descended into -- their bodies belong to the
    inner (deeper, hotter) loop and are reported there, which keeps
    every finding unique.  A nested loop's iterable/test does run here
    (once per outer iteration), so it is walked.  Nested ``def`` and
    ``lambda`` bodies are skipped, matching the cost model.
    """

    def walk(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, (ast.For, ast.AsyncFor)):
                yield child.iter
                yield from walk(child.iter)
                continue
            if isinstance(child, ast.While):
                continue
            yield child
            yield from walk(child)

    for stmt in loop.node.body:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield stmt.iter
            yield from walk(stmt.iter)
            continue
        if isinstance(stmt, ast.While):
            continue
        yield stmt
        yield from walk(stmt)


def _attr_chain(node: ast.expr) -> str | None:
    """``a.b.c`` as a dotted string when rooted at a plain Name."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _root_names(node: ast.expr) -> set[str] | None:
    """The Name roots an expression reads, or None if not analysable.

    Only simple value shapes qualify (names, constants, attribute and
    subscript chains, tuples of those); anything with a call or a
    comprehension inside is treated as not loop-invariant.
    """
    roots: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Call, ast.Await, ast.Lambda, *(
            ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp
        ))):
            return None
        if isinstance(sub, ast.Name):
            roots.add(sub.id)
    return roots


def _invariant(node: ast.expr, loop: _Loop) -> bool:
    """True iff the expression cannot change across the loop's iterations."""
    roots = _root_names(node)
    return roots is not None and not (roots & loop.bound)


def _hot_items(
    analysis: PerfAnalysis,
) -> Iterator[tuple[FunctionInfo, "object", _Loop, list[_Loop], int]]:
    """Every loop of every function with its effective body depth."""
    program = analysis.program
    for qualname in sorted(program.functions):
        finfo = program.functions[qualname]
        cost = analysis.cost.functions.get(qualname)
        if cost is None:
            continue
        for loop, stack in _iter_loops(finfo):
            effective = cost.entry_depth + loop.body_depth
            yield finfo, cost, loop, stack, effective


def _diag(
    rule_id: str,
    finfo: FunctionInfo,
    node: ast.AST,
    message: str,
    effective: int,
    analysis: PerfAnalysis,
) -> Diagnostic:
    weight = analysis.weight(finfo.qualname)
    hot = f"effective depth {effective}"
    if weight > 0.0:
        hot += f", observed {weight:.3f}s"
    return Diagnostic(
        rule=rule_id,
        severity=PERF_RULES[rule_id].severity,
        message=f"{message} in {finfo.qualname} ({hot})",
        location=SourceLocation(
            path=finfo.path,
            line=getattr(node, "lineno", finfo.line),
            col=getattr(node, "col_offset", None),
        ),
    )


# ---------------------------------------------------------------------------
# perf/scalar-loop-over-wires


def _positional_iteration(loop: _Loop) -> bool:
    """``for ... in range(...)/enumerate(...)`` -- index-driven loops."""
    if not isinstance(loop.node, (ast.For, ast.AsyncFor)):
        return False
    it = loop.node.iter
    return (
        isinstance(it, ast.Call)
        and isinstance(it.func, ast.Name)
        and it.func.id in ("range", "enumerate")
    )


def _loop_var_subscript(loop: _Loop, stack: list[_Loop]) -> ast.AST | None:
    """A body subscript indexed by a variable of any enclosing loop."""
    targets: set[str] = set()
    for enclosing in stack:
        if isinstance(enclosing.node, (ast.For, ast.AsyncFor)):
            targets.update(
                n.id
                for n in ast.walk(enclosing.node.target)
                if isinstance(n, ast.Name)
            )
    if not targets:
        return None
    for node in _loop_body_walk(loop):
        if not isinstance(node, ast.Subscript):
            continue
        index_names = {
            n.id for n in ast.walk(node.slice) if isinstance(n, ast.Name)
        }
        if index_names & targets:
            return node
    return None


@perf_rule(
    "perf/scalar-loop-over-wires",
    Severity.ERROR,
    "per-element Python loop over a positionally-indexed sequence",
)
def check_scalar_loop(analysis: PerfAnalysis) -> Iterator[Diagnostic]:
    for finfo, _cost, loop, stack, effective in _hot_items(analysis):
        if effective < HOT_DEPTH:
            continue
        subscript = _loop_var_subscript(loop, stack)
        if subscript is None and not _positional_iteration(loop):
            continue
        how = (
            "loop-variable subscripts"
            if subscript is not None
            else "range/enumerate iteration"
        )
        yield _diag(
            "perf/scalar-loop-over-wires",
            finfo,
            loop.node,
            f"per-element loop with {how}; replace with a NumPy "
            "gather/scatter or reduction",
            effective,
            analysis,
        )


# ---------------------------------------------------------------------------
# perf/membership-in-loop


def _linear_locals(finfo: FunctionInfo) -> set[str]:
    """Local names bound to list/tuple literals or list()/tuple() calls."""
    names: set[str] = set()
    for node in ast.walk(finfo.node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        linear = isinstance(value, (ast.List, ast.Tuple, ast.ListComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("list", "tuple", "sorted")
        )
        if not linear:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


@perf_rule(
    "perf/membership-in-loop",
    Severity.ERROR,
    "O(n) list/tuple membership probe inside a loop",
)
def check_membership(analysis: PerfAnalysis) -> Iterator[Diagnostic]:
    for finfo, _cost, loop, _stack, effective in _hot_items(analysis):
        if effective < HOT_DEPTH:
            continue
        linear = _linear_locals(finfo)
        if not linear:
            continue
        for node in _loop_body_walk(loop):
            if not isinstance(node, ast.Compare):
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.In, ast.NotIn)):
                    continue
                if (
                    isinstance(comparator, ast.Name)
                    and comparator.id in linear
                ):
                    yield _diag(
                        "perf/membership-in-loop",
                        finfo,
                        node,
                        f"membership test against list/tuple "
                        f"{comparator.id!r}; use a set or a boolean mask",
                        effective,
                        analysis,
                    )


# ---------------------------------------------------------------------------
# perf/append-accumulator


def _empty_list_locals(finfo: FunctionInfo) -> set[str]:
    """Local names initialised to ``[]`` or ``list()``."""
    names: set[str] = set()
    for node in ast.walk(finfo.node):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        empty = (isinstance(value, ast.List) and not value.elts) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "list"
            and not value.args
        )
        if not empty:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


@perf_rule(
    "perf/append-accumulator",
    Severity.ERROR,
    "element-wise .append into a list accumulator",
)
def check_append(analysis: PerfAnalysis) -> Iterator[Diagnostic]:
    for finfo, _cost, loop, _stack, effective in _hot_items(analysis):
        if effective < HOT_DEPTH:
            continue
        accumulators = _empty_list_locals(finfo)
        if not accumulators:
            continue
        for node in _loop_body_walk(loop):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in accumulators
            ):
                yield _diag(
                    "perf/append-accumulator",
                    finfo,
                    node,
                    f"per-element append to {node.func.value.id!r}; build "
                    "with a vectorised expression or np.fromiter",
                    effective,
                    analysis,
                )


# ---------------------------------------------------------------------------
# perf/repeated-recompute-in-loop

#: Pure builtins whose result depends only on their arguments.
_PURE_BUILTINS = frozenset({"sorted", "min", "max", "sum", "abs", "round"})

#: Pure module prefixes (dotted resolution of the callee).
_PURE_PREFIXES = ("math.", "numpy.", "np.")

#: Impure exceptions under the pure prefixes.
_IMPURE = ("numpy.random", "np.random")


def _pure_callee(ctx, node: ast.Call) -> str | None:
    """The dotted name of a known-pure callee, else None."""
    if isinstance(node.func, ast.Name) and node.func.id in _PURE_BUILTINS:
        return node.func.id
    dotted = ctx.resolve(node.func) if ctx is not None else _attr_chain(node.func)
    if dotted is None:
        return None
    if any(dotted.startswith(p) for p in _IMPURE):
        return None
    if any(dotted.startswith(p) for p in _PURE_PREFIXES):
        return dotted
    return None


@perf_rule(
    "perf/repeated-recompute-in-loop",
    Severity.ERROR,
    "loop-invariant pure call recomputed every iteration",
)
def check_recompute(analysis: PerfAnalysis) -> Iterator[Diagnostic]:
    program = analysis.program
    for finfo, _cost, loop, _stack, effective in _hot_items(analysis):
        if effective < HOT_DEPTH:
            continue
        ctx = program.contexts.get(finfo.path)
        for node in _loop_body_walk(loop):
            if not isinstance(node, ast.Call) or not node.args or node.keywords:
                continue
            callee = _pure_callee(ctx, node)
            if callee is None:
                continue
            if all(_invariant(arg, loop) for arg in node.args):
                yield _diag(
                    "perf/repeated-recompute-in-loop",
                    finfo,
                    node,
                    f"{callee}(...) has loop-invariant arguments; hoist "
                    "it out of the loop",
                    effective,
                    analysis,
                )


# ---------------------------------------------------------------------------
# perf/copy-in-loop

_COPY_CTORS = frozenset({"list", "dict", "tuple", "set", "frozenset"})


def _is_copy(node: ast.AST) -> str | None:
    """A short label when the node allocates a full-container copy."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "copy" and not node.args:
            return ".copy()"
        if (
            isinstance(func, ast.Name)
            and func.id in _COPY_CTORS
            and len(node.args) == 1
            and isinstance(node.args[0], (ast.Name, ast.Attribute))
        ):
            return f"{func.id}(...)"
        dotted = _attr_chain(func) if isinstance(func, ast.Attribute) else None
        if dotted is not None and dotted.split(".", 1)[-1] == "array":
            return f"{dotted}(...)"
    if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Slice):
        s = node.slice
        if s.lower is None and s.upper is None and s.step is None:
            return "[:] slice"
    return None


@perf_rule(
    "perf/copy-in-loop",
    Severity.ERROR,
    "full-container copy allocated inside a loop",
)
def check_copy(analysis: PerfAnalysis) -> Iterator[Diagnostic]:
    for finfo, _cost, loop, _stack, effective in _hot_items(analysis):
        if effective < HOT_DEPTH:
            continue
        for node in _loop_body_walk(loop):
            label = _is_copy(node)
            if label is not None:
                yield _diag(
                    "perf/copy-in-loop",
                    finfo,
                    node,
                    f"container copy via {label} on every iteration; "
                    "hoist or mutate in place",
                    effective,
                    analysis,
                )


# ---------------------------------------------------------------------------
# perf/attr-lookup-in-hot-loop

#: Minimum occurrences of one chain in a loop body before it fires.
_ATTR_REPEATS = 3


@perf_rule(
    "perf/attr-lookup-in-hot-loop",
    Severity.ERROR,
    "repeated loop-invariant attribute chain; hoist to a local",
)
def check_attr_lookup(analysis: PerfAnalysis) -> Iterator[Diagnostic]:
    for finfo, _cost, loop, _stack, effective in _hot_items(analysis):
        if effective < HOT_DEPTH:
            continue
        seen: dict[str, list[ast.Attribute]] = {}
        claimed: set[int] = set()
        for node in _loop_body_walk(loop):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                # bound-method lookup, not a data read; the accumulator
                # and copy rules own the call patterns worth flagging
                claimed.add(id(node.func))
                continue
            if not isinstance(node, ast.Attribute):
                continue
            if id(node) in claimed or not isinstance(node.ctx, ast.Load):
                continue
            chain = _attr_chain(node)
            if chain is None or "." not in chain:
                continue
            root = chain.split(".", 1)[0]
            if root in loop.bound or root in ("self", "cls"):
                # `self.x` is idiomatic; loop-bound roots vary per
                # iteration, so hoisting would change behaviour
                continue
            # count the outermost chain only once
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute) and sub is not node:
                    claimed.add(id(sub))
            seen.setdefault(chain, []).append(node)
        for chain in sorted(seen):
            nodes = seen[chain]
            if len(nodes) >= _ATTR_REPEATS:
                yield _diag(
                    "perf/attr-lookup-in-hot-loop",
                    finfo,
                    nodes[0],
                    f"attribute chain {chain!r} read {len(nodes)} times "
                    "per iteration; hoist to a local",
                    effective,
                    analysis,
                )
