"""Perf reports: aggregation and text/JSON rendering.

A :class:`PerfReport` is the result of one hot-path analysis run: the
sorted diagnostics plus the program's headline sizes and the number of
*hot* functions (effective loop depth >= 2 somewhere in the body),
sharing the severity accessors and exit-code convention of
:class:`repro.diagnostics.DiagnosticReport` with the lint, sanitize and
flow reports.  ``PERF_FORMAT`` versions the report JSON; the dataclass
is pinned in the sanitize schema fingerprint registry like every other
persisted format in the tree (``repro sanitize --fix`` re-pins after a
deliberate, version-bumped change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..diagnostics import DiagnosticReport
from ..sanitize.diagnostics import Diagnostic

__all__ = ["PERF_FORMAT", "PerfReport"]

#: Version of the perf report JSON document.
PERF_FORMAT = 1


@dataclass
class PerfReport(DiagnosticReport):
    """The outcome of one hot-path perf analysis.

    ``targets`` are the paths as requested; ``files``, ``functions``
    and ``hot`` size the analysed program (zero hot functions on a
    non-trivial tree means depth propagation broke, not that the tree
    is fast); ``profile`` names the joined trace/profile when one was
    given; ``suppressed`` counts baseline-grandfathered findings hidden
    from ``diagnostics``.
    """

    targets: list[str] = field(default_factory=list)
    files: int = 0
    functions: int = 0
    hot: int = 0
    profile: str | None = None
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0

    def format_text(self) -> str:
        """Full human-readable report."""
        header = (
            f"perf {' '.join(self.targets)}: "
            f"{self.files} file{'s' if self.files != 1 else ''}, "
            f"{self.functions} functions, {self.hot} hot"
        )
        if self.profile:
            header += f", profile {self.profile}"
        return self.render_text(header)

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible report document."""
        return {
            "format": PERF_FORMAT,
            "targets": self.targets,
            "files": self.files,
            "functions": self.functions,
            "hot": self.hot,
            "profile": self.profile,
            **self.json_tail(),
        }
