"""Joining measured profiles onto the call graph (``--profile``).

Two observed-time sources are accepted, both produced by
:mod:`repro.obs`:

* a **trace JSONL** written by ``--trace`` (span records with ``name``,
  ``id``, ``parent``, ``dur``): per-span *self time* is the span's
  duration minus its direct children's, aggregated by span name;
* a **profile document** as serialised by
  :meth:`repro.obs.profile.ProfileReport.to_json` (``cpu`` rows with
  ``self_s`` and a ``file.py:line(func)`` location).

Span names are mapped to owning functions statically: every
``*.span(NAME, ...)`` call site in the program is found in the AST, the
``NAME`` argument resolved through the import graph to its module-level
string constant (``repro.obs.events.SPAN_*``) or taken literally.  The
owner's weight then flows *down* the call edges with a max-combine --
a function called from a hot span is hot -- to a fixpoint.

Spans whose name no call site in the analysed tree owns (instrumented
code that has since been deleted or renamed) degrade gracefully: they
are reported in :attr:`ProfileJoin.unmatched` instead of aborting the
run, and contribute no weight.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ObsError
from ..flow.graph import Program
from ..obs.events import read_trace

__all__ = ["ProfileJoin", "load_profile", "join_profile", "span_owners"]

#: ``file.py:123(funcname)`` as emitted by ProfileReport cpu rows.
_WHERE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+)\((?P<func>[^)]*)\)$")


@dataclass
class ProfileJoin:
    """One profile joined onto one program.

    ``span_self`` maps span names to aggregated self seconds;
    ``weights`` maps function qualnames to their observed hot-path
    weight (seconds) after propagation; ``unmatched`` lists span names
    with measured time but no owning call site in the tree.
    """

    source: str
    span_self: dict[str, float] = field(default_factory=dict)
    weights: dict[str, float] = field(default_factory=dict)
    unmatched: tuple[str, ...] = ()


def load_profile(path: str | Path) -> dict[str, Any] | list[dict]:
    """Read a trace JSONL or a ProfileReport JSON document.

    A file whose whole body parses as one JSON object with a ``cpu``
    list is treated as a profile document; anything else must be a
    valid trace (validated record by record by
    :func:`repro.obs.events.read_trace`).
    """
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise ObsError(f"cannot read profile {p}: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and isinstance(doc.get("cpu"), list):
        return doc
    return read_trace(p)


def _span_self_times(records: list[dict]) -> dict[str, float]:
    """Aggregate per-name self time: duration minus direct children."""
    spans = [
        r
        for r in records
        if r.get("type") == "span" and isinstance(r.get("dur"), (int, float))
    ]
    child_time: dict[Any, float] = {}
    for rec in spans:
        parent = rec.get("parent")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + float(rec["dur"])
    totals: dict[str, float] = {}
    for rec in spans:
        name = rec.get("name")
        if not isinstance(name, str):
            continue
        self_time = max(0.0, float(rec["dur"]) - child_time.get(rec.get("id"), 0.0))
        totals[name] = totals.get(name, 0.0) + self_time
    return totals


def _string_constants(program: Program) -> dict[str, str]:
    """Every module-level ``NAME = "literal"`` as ``module.NAME -> value``."""
    consts: dict[str, str] = {}
    for module in sorted(program.modules):
        ctx = program.modules[module]
        for stmt in ctx.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            if not (
                isinstance(value, ast.Constant) and isinstance(value.value, str)
            ):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    consts[f"{module}.{target.id}"] = value.value
    return consts


def span_owners(program: Program) -> dict[str, set[str]]:
    """Span name -> qualnames of functions opening a span of that name."""
    consts = _string_constants(program)
    owners: dict[str, set[str]] = {}
    for qualname in sorted(program.functions):
        finfo = program.functions[qualname]
        ctx = program.contexts.get(finfo.path)
        for node in ast.walk(finfo.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and node.args
            ):
                continue
            arg = node.args[0]
            name: str | None = None
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name = arg.value
            elif ctx is not None:
                dotted = ctx.resolve(arg)
                if dotted is not None:
                    # Imported constants resolve fully dotted; a
                    # module-local NAME resolves bare, so qualify it.
                    name = consts.get(dotted)
                    if name is None:
                        name = consts.get(f"{ctx.module}.{dotted}")
            if name is not None:
                owners.setdefault(name, set()).add(qualname)
    return owners


def _cpu_row_weights(
    program: Program, doc: dict[str, Any]
) -> tuple[dict[str, float], list[str]]:
    """Match ProfileReport cpu rows to functions by file name + function."""
    by_key: dict[tuple[str, str], list[str]] = {}
    for qualname in sorted(program.functions):
        finfo = program.functions[qualname]
        by_key.setdefault(
            (Path(finfo.path).name, finfo.name), []
        ).append(qualname)
    weights: dict[str, float] = {}
    unmatched: list[str] = []
    for row in doc.get("cpu", []):
        where = row.get("where", "")
        match = _WHERE.match(where) if isinstance(where, str) else None
        self_s = row.get("self_s")
        if match is None or not isinstance(self_s, (int, float)):
            continue
        targets = by_key.get(
            (Path(match.group("file")).name, match.group("func")), []
        )
        if not targets:
            unmatched.append(where)
            continue
        for qualname in targets:
            weights[qualname] = weights.get(qualname, 0.0) + float(self_s)
    return weights, unmatched


def _propagate(program: Program, weights: dict[str, float]) -> dict[str, float]:
    """Flow weight down call edges with a max-combine to a fixpoint."""
    out = dict(weights)
    changed = True
    while changed:
        changed = False
        for edge in program.edges:
            w = out.get(edge.caller, 0.0)
            if w > out.get(edge.callee, 0.0):
                out[edge.callee] = w
                changed = True
    return out


def join_profile(program: Program, path: str | Path) -> ProfileJoin:
    """Load a trace/profile and join it onto the program's call graph."""
    loaded = load_profile(path)
    if isinstance(loaded, dict):
        seeds, unmatched = _cpu_row_weights(program, loaded)
        span_self: dict[str, float] = {}
    else:
        span_self = _span_self_times(loaded)
        owners = span_owners(program)
        seeds = {}
        unmatched = []
        for name in sorted(span_self):
            holders = owners.get(name)
            if not holders:
                unmatched.append(name)
                continue
            for qualname in holders:
                seeds[qualname] = seeds.get(qualname, 0.0) + span_self[name]
    return ProfileJoin(
        source=str(path),
        span_self=span_self,
        weights=_propagate(program, seeds),
        unmatched=tuple(unmatched),
    )
