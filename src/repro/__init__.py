"""repro -- an executable reproduction of Plaxton & Suel (SPAA 1992).

*"A Lower Bound for Sorting Networks Based on the Shuffle Permutation"*
proves that every sorting network based on the shuffle permutation --
equivalently, every iterated reverse delta network with too few blocks --
has depth :math:`\\Omega(\\lg^2 n / \\lg\\lg n)`.  The proof is a
constructive adversary; this library runs it against concrete networks.

Quickstart::

    import numpy as np
    from repro import bitonic_iterated_rdn, prove_not_sorting

    network = bitonic_iterated_rdn(64).truncated(3)   # 3 of 6 phases
    outcome = prove_not_sorting(network)
    assert outcome.proved_not_sorting
    cert = outcome.certificate                        # verified fooling pair
    print(cert.input_a, cert.input_b)

Package layout:

* :mod:`repro.networks` -- comparator-network substrate (circuit and
  register models, shuffle permutation, delta topologies);
* :mod:`repro.core` -- the paper's machinery (patterns, Lemma 4.1
  adversary, Theorem 4.1 loop, Corollary 4.1.1 certificates, bounds);
* :mod:`repro.sorters` -- Batcher's networks and the baseline spectrum;
* :mod:`repro.machines` -- the shuffle-exchange machine, prefix/FFT
  ascend algorithms, permutation routing;
* :mod:`repro.analysis` -- 0-1 verification, collision graphs, topology
  recognisers, exhaustive ground truth;
* :mod:`repro.experiments` -- the E1-E13 drivers behind the benchmarks;
* :mod:`repro.farm` -- parallel campaign runner with a content-addressed
  artifact store (``python -m repro farm``);
* :mod:`repro.sanitize` -- static analysis of this source tree itself:
  determinism, fork-safety, observability and schema-stability rules
  (``python -m repro sanitize``).
"""

from . import analysis, core, experiments, farm, machines, networks, sorters
from .core import (
    AdversaryRun,
    FoolingOutcome,
    Lemma41Result,
    NonSortingCertificate,
    Pattern,
    all_medium_pattern,
    bounds,
    extract_fooling_pair,
    prove_not_sorting,
    run_adversary,
    run_lemma41,
    sml_pattern,
)
from .errors import ReproError
from .networks import (
    ComparatorNetwork,
    Gate,
    IteratedReverseDeltaNetwork,
    Level,
    Op,
    Permutation,
    RegisterProgram,
    ReverseDeltaNetwork,
    bitonic_iterated_rdn,
    butterfly_rdn,
    random_iterated_rdn,
    random_reverse_delta,
    shuffle_permutation,
    shuffle_split_rdn,
)
from .sorters import bitonic_sorting_network, oddeven_merge_sorting_network
from .analysis import is_sorting_network

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # substrate
    "Gate",
    "Op",
    "Level",
    "ComparatorNetwork",
    "Permutation",
    "RegisterProgram",
    "ReverseDeltaNetwork",
    "IteratedReverseDeltaNetwork",
    "shuffle_permutation",
    "butterfly_rdn",
    "shuffle_split_rdn",
    "random_reverse_delta",
    "random_iterated_rdn",
    "bitonic_iterated_rdn",
    # the paper's machinery
    "Pattern",
    "sml_pattern",
    "all_medium_pattern",
    "run_lemma41",
    "Lemma41Result",
    "run_adversary",
    "AdversaryRun",
    "prove_not_sorting",
    "FoolingOutcome",
    "extract_fooling_pair",
    "NonSortingCertificate",
    "bounds",
    # baselines & checks
    "bitonic_sorting_network",
    "oddeven_merge_sorting_network",
    "is_sorting_network",
    # subpackages
    "networks",
    "core",
    "sorters",
    "machines",
    "analysis",
    "experiments",
    "farm",
]
