"""Diagnostic plumbing shared by the repo's static analyzers.

The analyzer family lives on this module: :mod:`repro.lint` (networks
are the analysis target) and the source-tree analyzers
:mod:`repro.sanitize`, :mod:`repro.flow`, :mod:`repro.perf` and
:mod:`repro.race`.  All express findings as immutable
:class:`Diagnostic` records -- a stable ``category/name`` rule id, a
:class:`Severity`, a message, an analyzer-specific location, and an
optional :class:`FixIt` -- and aggregate them in reports sharing one
rendering, one JSON schema, and one exit-code convention
(:class:`DiagnosticReport`).  Keeping the plumbing here means the
analyzers cannot drift: a change to severity ordering, report summaries
or exit codes lands in all of them at once.

The ratcheted-baseline mechanism (:class:`Baseline`) and the waiver
pass every tree analyzer runs over its raw findings
(:func:`apply_waivers`) live here too, so the grandfathering semantics
-- line-number-independent fingerprints, pragma-before-baseline order,
suppressed counts -- are identical across ``sanitize``, ``flow``,
``perf`` and ``race``.

Locations are analyzer-specific (a network finding points at a
stage/gate/wire triple, a source finding at a file/line/column) and are
duck-typed: any object with ``format() -> str``, ``to_json() -> dict``
and a comparable ``sort_key`` tuple works.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Protocol, runtime_checkable

from .errors import SanitizeError

__all__ = [
    "Severity",
    "SupportsLocation",
    "FixIt",
    "Diagnostic",
    "DiagnosticReport",
    "BASELINE_VERSION",
    "Baseline",
    "apply_waivers",
]


class Severity(enum.Enum):
    """How serious a diagnostic is.

    ``ERROR``
        A violated invariant (the network provably cannot sort; the
        source change breaks reproducibility or fork safety); the
        analyzer exits non-zero.
    ``WARNING``
        Suspicious but not disqualifying.
    ``INFO``
        Neutral facts worth surfacing.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank for sorting: errors first, infos last."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@runtime_checkable
class SupportsLocation(Protocol):
    """What a location object must provide to ride on a diagnostic."""

    def format(self) -> str:  # pragma: no cover - protocol
        """Render the location for the human-readable report."""
        ...

    def to_json(self) -> dict[str, Any]:  # pragma: no cover - protocol
        """Render the location as a JSON-compatible dict."""
        ...

    @property
    def sort_key(self) -> tuple:  # pragma: no cover - protocol
        """Tuple ordering diagnostics within one severity."""
        ...


@dataclass(frozen=True)
class FixIt:
    """A behaviour-preserving repair suggested by a rule.

    ``removals`` lists analyzer-specific ``(index, index)`` pairs of
    items that can be deleted safely; :func:`repro.lint.fixes.apply`
    consumes gate removals, and :mod:`repro.sanitize` uses the
    description alone (its repairs are applied by hand or by
    ``--fix`` for schema registry updates).
    """

    description: str
    removals: tuple[tuple[int, int], ...] = ()

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible dict."""
        return {
            "description": self.description,
            "removals": [list(r) for r in self.removals],
        }


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analyzer rule.

    ``rule`` is the registry id (e.g. ``"abstract/redundant-comparator"``
    or ``"determinism/unseeded-rng"``); ``severity``, ``message`` and
    ``location`` describe the finding; ``fix`` optionally carries a safe
    repair.  ``location`` may be ``None`` for findings with no
    meaningful anchor (e.g. a whole-network budget violation).
    """

    rule: str
    severity: Severity
    message: str
    location: SupportsLocation | None = None
    fix: FixIt | None = None

    def format(self) -> str:
        """One-line rendering: ``error[rule] location: message``."""
        loc = self.location.format() if self.location is not None else "-"
        prefix = f"{self.severity.value}[{self.rule}]"
        if loc != "-":
            return f"{prefix} {loc}: {self.message}"
        return f"{prefix}: {self.message}"

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible dict mirroring :meth:`format`'s content."""
        doc: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "location": (
                self.location.to_json() if self.location is not None else {}
            ),
        }
        if self.fix is not None:
            doc["fix"] = self.fix.to_json()
        return doc

    @property
    def sort_key(self) -> tuple:
        """Order: severity rank, then location order, then rule id.

        Location sort keys are analyzer-specific tuples; within one
        report they are homogeneous, so tuple comparison is total.
        """
        loc_key = self.location.sort_key if self.location is not None else ()
        return (self.severity.rank, loc_key, self.rule)


class DiagnosticReport:
    """Severity accessors, summaries and exit codes shared by reports.

    Subclasses are dataclasses declaring (at least) a ``diagnostics``
    list plus their own headline fields, and implement
    :meth:`format_text` / :meth:`to_json` on top of the helpers here.
    The exit-code convention is uniform across analyzers: ``1`` when at
    least one error-severity diagnostic fired, else ``0`` (usage
    problems exit ``2`` at the CLI layer, before a report exists).
    """

    diagnostics: list[Diagnostic]

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        """All diagnostics of one severity, in report order."""
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        """The error-severity diagnostics."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        """The warning-severity diagnostics."""
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        """The info-severity diagnostics."""
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        """True iff at least one error diagnostic was reported."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """Process exit code: 1 when errors are present, else 0."""
        return 1 if self.has_errors else 0

    @property
    def fixable(self) -> list[Diagnostic]:
        """Diagnostics carrying a safe fix-it."""
        return [d for d in self.diagnostics if d.fix is not None]

    def by_rule(self, prefix: str) -> list[Diagnostic]:
        """Diagnostics whose rule id starts with ``prefix``."""
        return [d for d in self.diagnostics if d.rule.startswith(prefix)]

    def summary(self) -> str:
        """One line like ``2 errors, 1 warning, 3 notes``."""
        e, w, i = len(self.errors), len(self.warnings), len(self.infos)
        parts = [
            f"{e} error{'s' if e != 1 else ''}",
            f"{w} warning{'s' if w != 1 else ''}",
            f"{i} note{'s' if i != 1 else ''}",
        ]
        return ", ".join(parts)

    def summary_json(self) -> dict[str, int]:
        """The counts block shared by every report's ``to_json``."""
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "fixable": len(self.fixable),
        }

    def render_text(self, header: str) -> str:
        """The shared ``format_text`` body of every tree analyzer report.

        One ``header`` line sizing the analysed tree, each diagnostic
        with its optional fix-it, then the severity summary with the
        baselined count appended when the ratchet suppressed anything.
        Subclasses build their analyzer-specific header and delegate
        here, so the rendering cannot drift between families.
        """
        lines = [header]
        for diag in self.diagnostics:
            lines.append("  " + diag.format())
            if diag.fix is not None:
                lines.append(f"    fix-it: {diag.fix.description}")
        summary = self.summary()
        suppressed = getattr(self, "suppressed", 0)
        if suppressed:
            summary += f" ({suppressed} baselined)"
        lines.append(summary)
        return "\n".join(lines)

    def json_tail(self) -> dict[str, Any]:
        """The shared trailing block of every report's ``to_json``.

        Every schema-pinned report document ends with the rendered
        diagnostics, the suppressed count and the severity summary;
        subclasses splat this after their headline fields so the wire
        tail stays field-for-field identical across analyzers.
        """
        return {
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "suppressed": getattr(self, "suppressed", 0),
            "summary": self.summary_json(),
        }


#: Version of the baseline document format; bump on breaking change.
BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A set of grandfathered finding fingerprints.

    A baseline is a JSON document listing findings that are
    acknowledged but not yet fixed; matching findings are suppressed
    from the report (and the exit code) so a CI gate can be turned on
    *before* the tree is fully clean, then ratcheted down to empty.
    The shipped sanitize/flow/race baselines are empty and must stay
    empty: new findings fail CI immediately; ``perf-baseline.json``
    grandfathers the vectorization worklist and is burned down PR by
    PR.

    Entries are fingerprinted as ``(rule id, repro-anchored path,
    stripped source line)`` rather than line numbers, so unrelated
    edits above a grandfathered finding do not churn the baseline.  A
    consequence worth knowing: two *identical* violations on identical
    lines of one file share a fingerprint and are suppressed together
    -- acceptable for a ratchet-to-zero workflow, where entries only
    ever disappear.
    """

    entries: set[tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file (``SanitizeError`` on malformed input)."""
        p = Path(path)
        try:
            doc = json.loads(p.read_text())
        except OSError as exc:
            raise SanitizeError(f"cannot read baseline {p}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise SanitizeError(
                f"baseline {p} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
            raise SanitizeError(
                f"baseline {p} must be an object with version = "
                f"{BASELINE_VERSION}"
            )
        findings = doc.get("findings")
        if not isinstance(findings, list):
            raise SanitizeError(f"baseline {p}: 'findings' must be a list")
        entries: set[tuple[str, str, str]] = set()
        for i, entry in enumerate(findings):
            if not isinstance(entry, dict) or not all(
                isinstance(entry.get(k), str) for k in ("rule", "path")
            ):
                raise SanitizeError(
                    f"baseline {p}: finding {i} must be an object with "
                    "string 'rule' and 'path'"
                )
            entries.add(
                (entry["rule"], entry["path"], entry.get("content", ""))
            )
        return cls(entries=entries)

    @staticmethod
    def fingerprint(diag: Diagnostic, line_text: str) -> tuple[str, str, str]:
        """The line-number-independent identity of one finding."""
        from .sanitize.engine import anchored_path

        path = getattr(diag.location, "path", "") or ""
        return (diag.rule, anchored_path(path) if path else "", line_text)

    def matches(self, diag: Diagnostic, line_text: str) -> bool:
        """True iff this finding is grandfathered."""
        return self.fingerprint(diag, line_text) in self.entries

    @staticmethod
    def document(
        findings: list[tuple[Diagnostic, str]],
    ) -> dict[str, Any]:
        """Build a baseline document from ``(diagnostic, line text)`` pairs."""
        seen: set[tuple[str, str, str]] = set()
        entries: list[dict[str, str]] = []
        for diag, line_text in findings:
            fp = Baseline.fingerprint(diag, line_text)
            if fp in seen:
                continue
            seen.add(fp)
            entries.append(
                {"rule": fp[0], "path": fp[1], "content": fp[2]}
            )
        entries.sort(key=lambda e: (e["path"], e["rule"], e["content"]))
        return {"version": BASELINE_VERSION, "findings": entries}

    def write(self, path: str | Path, doc: dict[str, Any]) -> None:
        """Write a baseline document with a trailing newline."""
        Path(path).write_text(json.dumps(doc, indent=2) + "\n")


def apply_waivers(
    diagnostics: list[Diagnostic],
    contexts: Mapping[str, Any],
    baseline: "Baseline | None",
) -> tuple[list[Diagnostic], int]:
    """The waiver pass every tree analyzer runs over its raw findings.

    Pragma-suppressed findings are dropped silently (the pragma is the
    documented waiver); baseline-matched findings are dropped but
    counted, so a grandfathered tree never reads as clean.  Returns the
    kept diagnostics sorted by :attr:`Diagnostic.sort_key` plus the
    suppressed count.  ``contexts`` maps file paths to objects with the
    :class:`repro.sanitize.FileContext` waiver surface (``suppressed``
    and ``line_text``); diagnostics whose path has no context (e.g.
    syntax errors) skip the pragma check and fingerprint with an empty
    line.
    """
    kept: list[Diagnostic] = []
    suppressed = 0
    for diag in diagnostics:
        path = getattr(diag.location, "path", None)
        ctx = contexts.get(path) if path else None
        if ctx is not None and ctx.suppressed(diag):
            continue
        if ctx is None:
            line_text = ""
        else:
            line_text = ctx.line_text(getattr(diag.location, "line", None))
        if baseline is not None and baseline.matches(diag, line_text):
            suppressed += 1
            continue
        kept.append(diag)
    kept.sort(key=lambda d: d.sort_key)
    return kept, suppressed
