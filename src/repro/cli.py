"""Command-line interface: attack, verify, route, render, experiment.

Installed as ``python -m repro`` (see ``__main__.py``).  Subcommands:

``attack``
    Run the Plaxton-Suel adversary against a network family and print
    the per-block trace; with ``--certificate`` also extract, verify and
    (optionally) save the fooling pair.
``verify``
    0-1-principle verification of a named sorter or a serialised network
    file.
``route``
    Compute Beneš / in-class shuffle routing for a permutation.
``render``
    Print the ASCII diagram of a named sorter or serialised network.
``experiment``
    Run one of the E1-E13 drivers and print its table.
``bounds``
    Print the paper's bound landscape for a given n.
``lint``
    Statically analyse a named sorter or serialised network file:
    structural rules, 0-1 abstract interpretation, budget checks and
    never-compared-pair witnesses, with text or JSON diagnostics and
    ``--fix`` to write a repaired network.
``sanitize``
    Statically analyse the repro source tree itself: determinism,
    fork-safety, observability and schema-stability rules over the
    Python AST, with ``--select``, an optional baseline of
    grandfathered findings, and ``--fix`` to re-pin the schema
    fingerprint registry (see docs/SANITIZE.md).
``farm``
    Parallel campaign runner: ``farm run spec.json --workers N
    [--resume]`` sweeps a job grid on a worker pool, caching every
    result in a content-addressed artifact store; ``farm status``
    inventories a store.
``serve``
    Run the certificate daemon: an async HTTP service answering
    attack/verify queries from the artifact store (cache-fronted,
    batch-computed on the farm pool; see docs/SERVE.md).
``query``
    Send one request to a running daemon and print the response.
``loadgen``
    Drive a running daemon with closed-loop concurrent load and report
    p50/p99 latency and certificates/sec (``--json [PATH]`` for the
    machine-readable report).
``top``
    Live dashboard: poll a running daemon's ``/statsz`` + ``/metricsz``
    (req/s, cache tier hit ratios, p50/p99 from histogram buckets) or a
    farm store's heartbeats (``--store``), refreshing every
    ``--interval`` seconds.
``stats``
    Analyse a trace JSONL file written by ``--trace``: span tree,
    slowest spans, timer percentiles, the adversary's per-block
    special-set tables, and the certificate service's cache summary.

Global flags: ``-v``/``-q`` adjust log verbosity (also via the
``REPRO_LOG`` environment variable); ``attack``/``experiment`` take
``--trace PATH`` to record a structured trace, ``farm run`` takes
``--trace [PATH]``, and ``attack --profile`` prints CPU/memory hotspots
(also via ``REPRO_PROFILE=1``).  Every subcommand additionally runs
under a crash flight recorder (``SIGUSR2`` dumps the recent-record
ring, as does the unhandled-error backstop; opt out with
``REPRO_FLIGHT=0``, point dumps somewhere with ``REPRO_FLIGHT_DIR``).

The CLI is deliberately thin: every command is one or two calls into the
library, so it doubles as living documentation of the public API.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import os
import sys
from pathlib import Path

import numpy as np

from . import __version__
from .core import bounds as bounds_mod
from .errors import FarmError, LintError, ObsError, ReproError, SanitizeError
from .core.fooling import prove_not_sorting
from .core.iterate import theorem41_guarantee
from .experiments import ALL_EXPERIMENTS
from .experiments.workloads import iterated_family
from .machines.routing import benes_routing_network, sort_route_program
from .networks import serialize
from .networks.draw import render_network, render_stage_summary, to_dot
from .networks.permutations import Permutation
from .obs import (
    configure_logging,
    flight_enabled,
    flight_recording,
    get_flight,
    profile_section,
    profiling_enabled,
    read_trace,
    tracing,
)
from .obs.report import render_stats, stats_json, well_formedness_problems
from .sorters.registry import get_sorter, sorter_names

__all__ = ["main", "build_parser"]

logger = logging.getLogger("repro.cli")


def _load_network(path: str):
    obj = serialize.loads(Path(path).read_text())
    if hasattr(obj, "to_network"):
        return obj.to_network()
    return obj


def _resolve_network(args) -> "object":
    """Resolve --sorter NAME or --file PATH to an evaluable network."""
    if getattr(args, "file", None):
        return _load_network(args.file)
    spec = get_sorter(args.sorter)
    return spec.build(args.n)


def _print_lint_failure(context: str, exc: LintError) -> None:
    """Render a precondition failure as located lint diagnostics."""
    logger.error("%s: %s", context, exc)
    for diag in getattr(exc, "diagnostics", []):
        logger.error("  %s", diag.format())


def _attack_target(args) -> str:
    if getattr(args, "file", None):
        return args.file
    return f"{args.family} (n={args.n}, blocks={args.blocks})"


def _print_attack_result(args, result: dict, cached: bool) -> int:
    """Render one attack result dict (live or from the store)."""
    suffix = "  [store hit, certificate re-verified]" if cached else ""
    print(f"adversary vs {_attack_target(args)} (k={result['k']}){suffix}")
    print(f"{'block':>5} {'entering':>9} {'union':>7} {'survivor':>9} "
          f"{'guarantee':>12}")
    for rec in result["records"]:
        print(f"{rec['block'] + 1:>5} {rec['entering']:>9} "
              f"{rec['union']:>7} {rec['survivor']:>9} "
              f"{theorem41_guarantee(result['n'], rec['block'] + 1):>12.3e}")
    cert_doc = result.get("certificate")
    if result["proved_not_sorting"] and cert_doc is not None:
        wires = tuple(cert_doc["wires"])
        values = tuple(cert_doc["values"])
        print(f"\nNOT a sorting network; verified fooling pair on wires "
              f"{wires}, values {values}")
        if args.certificate:
            Path(args.certificate).write_text(json.dumps(cert_doc, indent=2))
            print(f"certificate written to {args.certificate}")
    else:
        print("\ninconclusive: the special set collapsed "
              f"(|D| = {result['survivor']})")
    return 0


def _attack_via_store(args) -> int:
    """Attack through the content-addressed store: hit, revalidate or run."""
    from .farm import ArtifactStore, AttackJob

    if getattr(args, "file", None):
        payload = serialize.payload_of(json.loads(Path(args.file).read_text()))
        job = AttackJob(network=payload, k=args.k, seed=args.seed)
    else:
        job = AttackJob(family=args.family, n=args.n, blocks=args.blocks,
                        k=args.k, seed=args.seed)
    store = ArtifactStore(args.store)
    key = job.key()
    doc = store.get(key)
    if doc is not None and doc.get("status") == "ok":
        result = doc.get("result")
        valid = False
        if isinstance(result, dict):
            try:
                valid = job.revalidate(result)
            except ReproError:
                valid = False
        if valid:
            return _print_attack_result(args, result, cached=True)
        logger.warning("stale artifact failed re-verification; recomputing")
    try:
        result = job.execute()
    except LintError as exc:
        _print_lint_failure("attack precondition failed", exc)
        return 2
    store.put(key, {"job": job.to_json(), "status": "ok", "result": result})
    return _print_attack_result(args, result, cached=False)


def cmd_attack(args) -> int:
    if getattr(args, "store", None):
        return _attack_via_store(args)
    rng = np.random.default_rng(args.seed)
    if getattr(args, "file", None):
        from .core.attack import attack_circuit

        try:
            outcome = attack_circuit(
                _load_network(args.file), k=args.k, rng=rng
            )
        except LintError as exc:
            _print_lint_failure("attack precondition failed", exc)
            return 2
    else:
        network = iterated_family(args.family, args.n, args.blocks, rng)
        outcome = prove_not_sorting(network, k=args.k, rng=rng)
    run = outcome.run
    print(f"adversary vs {_attack_target(args)} (k={run.k})")
    print(f"{'block':>5} {'entering':>9} {'union':>7} {'survivor':>9} "
          f"{'guarantee':>12}")
    for rec in run.records:
        print(f"{rec.block_index + 1:>5} {rec.entering_size:>9} "
              f"{rec.union_size:>7} {rec.chosen_size:>9} "
              f"{theorem41_guarantee(run.n, rec.block_index + 1):>12.3e}")
    if outcome.proved_not_sorting:
        cert = outcome.certificate
        print(f"\nNOT a sorting network; verified fooling pair on wires "
              f"{cert.wires}, values {cert.values}")
        if args.certificate:
            Path(args.certificate).write_text(
                json.dumps(cert.to_json(), indent=2)
            )
            print(f"certificate written to {args.certificate}")
    else:
        print("\ninconclusive: the special set collapsed "
              f"(|D| = {len(run.special_set)})")
    return 0


def cmd_verify(args) -> int:
    from .analysis.verify import find_unsorted_zero_one_input

    try:
        net = _resolve_network(args)
        witness = find_unsorted_zero_one_input(net, max_wires=args.max_wires)
    except LintError as exc:
        _print_lint_failure("verify precondition failed", exc)
        return 2
    except ReproError as exc:
        logger.error("error[verify/precondition]: %s", exc)
        return 2
    if args.json:
        from .serve.protocol import verdict_document

        doc = verdict_document(
            sorter=None if getattr(args, "file", None) else args.sorter,
            n=net.n,
            depth=net.depth,
            size=net.size,
            witness=None if witness is None else witness.tolist(),
        )
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0 if witness is None else 1
    if witness is None:
        print(f"sorting network: yes (all 2^{net.n} binary inputs sorted)")
        return 0
    print(f"sorting network: NO; unsorted 0-1 witness: {witness.tolist()}")
    return 1


def cmd_serve(args) -> int:
    import asyncio

    from .farm import ArtifactStore
    from .serve import CertificateServer, ServeSettings

    settings = ServeSettings(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        max_batch=args.max_batch,
        batch_delay=args.batch_delay,
        request_timeout=args.request_timeout,
        job_timeout=args.job_timeout,
    )
    store = ArtifactStore(args.store)
    server = CertificateServer(store, settings)

    def announce(port: int) -> None:
        # scripted callers (tests, CI smoke) wait for this exact line
        print(f"serving on {settings.host}:{port} (store: {args.store})",
              flush=True)

    asyncio.run(server.serve_forever(on_ready=announce))
    print(f"drained; served {server.requests} requests "
          f"({server.rejected} rejected)")
    recorder = get_flight()
    if recorder is not None:
        # every smoke run leaves a postmortem artifact for CI to upload
        dump = recorder.dump("serve-drain")
        if dump is not None:
            print(f"flight recording: {dump}")
    return 0


def cmd_query(args) -> int:
    from .serve import ServeClient

    try:
        params = json.loads(args.params)
    except json.JSONDecodeError as exc:
        logger.error("error[query/params]: --params is not JSON: %s", exc)
        return 2
    if not isinstance(params, dict):
        logger.error("error[query/params]: --params must be a JSON object")
        return 2
    client = ServeClient(args.host, args.port, timeout=args.timeout)
    response = client.query(args.op, params)
    print(json.dumps(response.to_json(), indent=2, sort_keys=True))
    return 0 if response.ok else 1


def cmd_loadgen(args) -> int:
    from .serve import default_mix, run_load

    report = run_load(
        args.host,
        args.port,
        clients=args.clients,
        requests_per_client=args.requests,
        mix=default_mix(args.unique),
    )
    doc = json.dumps(report.to_json(), indent=2, sort_keys=True)
    if args.json == "-":
        print(doc)
    else:
        if args.json:
            Path(args.json).write_text(doc + "\n")
            logger.info("load report written to %s", args.json)
        print(report.format())
    return 1 if report.errors else 0


def cmd_route(args) -> int:
    perm = Permutation([int(x) for x in args.permutation.split(",")])
    benes = benes_routing_network(perm)
    print(f"Benes: {benes.depth} levels, {benes.element_count} switches")
    if args.in_class:
        prog = sort_route_program(perm)
        print(f"in-class shuffle routing: {prog.depth} steps "
              f"(shuffle-based: {prog.is_shuffle_based()})")
    out = benes.evaluate(np.arange(perm.n))
    ok = all(out[perm(i)] == i for i in range(perm.n))
    print(f"verified: {ok}")
    return 0 if ok else 1


def cmd_render(args) -> int:
    net = _resolve_network(args)
    if args.summary:
        print(render_stage_summary(net))
    elif args.dot:
        print(to_dot(net))
    else:
        print(render_network(net))
    return 0


def _experiment_kwargs(name: str, fn, args) -> dict:
    """Thread --seed / --store into drivers whose signature accepts them."""
    import inspect

    params = inspect.signature(fn).parameters
    kwargs = {}
    if getattr(args, "seed", None) is not None:
        if "seed" in params:
            kwargs["seed"] = args.seed
        else:
            logger.warning(
                "note: %s takes no seed (deterministic driver); "
                "--seed ignored", name,
            )
    if getattr(args, "store", None):
        if "store" in params:
            from .farm import ArtifactStore

            kwargs["store"] = ArtifactStore(args.store)
        else:
            logger.warning(
                "note: %s is not store-backed; --store ignored", name
            )
    return kwargs


def cmd_experiment(args) -> int:
    name = args.name.upper()
    if name == "ALL":
        for key, fn in ALL_EXPERIMENTS.items():
            table = fn(**_experiment_kwargs(key, fn, args))
            print(table.format())
            print()
            if args.save:
                table.save(args.save)
        if args.save:
            print(f"saved all tables to {args.save}")
        return 0
    if name not in ALL_EXPERIMENTS:
        logger.error(
            "unknown experiment %r; available: %s",
            name, ", ".join(ALL_EXPERIMENTS),
        )
        return 2
    fn = ALL_EXPERIMENTS[name]
    table = fn(**_experiment_kwargs(name, fn, args))
    print(table.format())
    if args.save:
        path = table.save(args.save)
        print(f"\nsaved to {path}")
    return 0


def cmd_farm_run(args) -> int:
    from .farm import (
        ArtifactStore,
        CampaignSpec,
        campaign_table,
        format_summary,
        run_campaign,
    )

    try:
        spec = CampaignSpec.load(args.spec)
    except FarmError as exc:
        logger.error("error[farm/spec]: %s", exc)
        return 2
    store = ArtifactStore(args.store)
    try:
        result = run_campaign(
            spec,
            store,
            workers=args.workers,
            resume=args.resume,
            timeout=args.timeout,
            retries=args.retries,
        )
    except FarmError as exc:
        logger.error("error[farm/run]: %s", exc)
        return 2
    table = campaign_table(result)
    if args.json:
        print(json.dumps(
            {"summary": result.summary(), "table": table.to_payload()},
            indent=2,
        ))
    else:
        print(table.format())
        print()
        print(format_summary(result))
    if args.save:
        table.save(args.save)
    if result.interrupted:
        return 130
    return 1 if result.failures else 0


def cmd_farm_status(args) -> int:
    from .farm import ArtifactStore, live_status_table, read_heartbeats, status_table

    store = ArtifactStore(args.store)
    if args.live:
        if args.json:
            print(json.dumps(read_heartbeats(store.root), indent=2,
                             sort_keys=True))
        else:
            print(live_status_table(store).format())
        return 0
    if args.json:
        print(json.dumps(store.stats(), indent=2))
    else:
        print(status_table(store).format())
    return 0


def cmd_top(args) -> int:
    from .obs.top import run_top

    return run_top(
        host=args.host,
        port=args.port,
        store=args.store,
        interval=args.interval,
        iterations=args.iterations,
    )


def cmd_stats(args) -> int:
    """Analyse a trace JSONL file: tree, timers, adversary tables.

    Exit codes: 2 when the file is unreadable or contains invalid
    records, 1 when the span tree is malformed (duplicate ids, dangling
    parents, impossible nesting), 0 otherwise.
    """
    try:
        records = read_trace(args.trace_file)
    except ObsError as exc:
        logger.error("error[stats/trace]: %s", exc)
        return 2
    if args.json:
        print(json.dumps(stats_json(records, top=args.top), indent=2))
    else:
        print(render_stats(records, top=args.top))
    return 1 if well_formedness_problems(records) else 0


def cmd_bounds(args) -> int:
    n = args.n
    print(f"bound landscape at n = {n}:")
    print(f"  trivial lower bound (lg n)        : {bounds_mod.lg(n):.2f}")
    print(f"  paper lower bound lg^2n/(4 lglg n): "
          f"{bounds_mod.depth_lower_bound(n):.2f}")
    print(f"  sharpened 1/(2+eps)               : "
          f"{bounds_mod.depth_lower_bound_sharpened(n):.2f}")
    print(f"  Batcher upper bound               : "
          f"{bounds_mod.batcher_depth(n):.2f}")
    print(f"  AKS (Paterson constant, literature): "
          f"{bounds_mod.lg(n) * 6100:.0f}")
    print(f"  max guaranteed-safe blocks d      : "
          f"{bounds_mod.max_safe_blocks(n)}")
    return 0


def cmd_lint(args) -> int:
    from .lint import LintConfig, apply_fixes, lint_document, lint_network

    config = LintConfig(
        select=tuple(args.select) if args.select else None
    )
    target = args.target
    path = Path(target)
    if path.suffix == ".json" or path.is_file():
        try:
            text = path.read_text()
        except OSError as exc:
            logger.error("error[lint/io]: cannot read %s: %s", target, exc)
            return 2
        report = lint_document(text, target=target, config=config)
    else:
        try:
            spec = get_sorter(target)
        except (KeyError, ReproError) as exc:
            message = exc.args[0] if exc.args else exc
            logger.error("error[lint/target]: %s", message)
            return 2
        report = lint_network(
            spec.build(args.n), target=f"{target} (n={args.n})", config=config
        )
    _print_report(args, report)
    if args.fix:
        if report.network is None:
            logger.error(
                "error[lint/fix]: nothing to fix: the document did not "
                "parse into a network"
            )
            return 2
        fixed = apply_fixes(report.network, report.diagnostics)
        Path(args.fix).write_text(serialize.dumps(fixed, indent=2))
        removed = report.network.size - fixed.size
        print(f"fixed network written to {args.fix} "
              f"({removed} gate{'s' if removed != 1 else ''} removed)")
    return report.exit_code


def _print_report(args, report) -> None:
    """Emit any analyzer report as JSON or text (the shared rendering)."""
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format_text())


def _selected(args) -> tuple[str, ...] | None:
    """The --select prefixes as the analyzer configs expect them."""
    return tuple(args.select) if args.select else None


def _analyzer_baseline(args, default_name: str):
    """Load the ratchet baseline a tree analyzer should apply.

    ``--baseline PATH`` wins; otherwise ``default_name`` is used when
    it exists.  No baseline applies while writing one (the findings
    being written must not be filtered by their own previous ratchet).
    """
    from .sanitize import Baseline

    path = args.baseline
    if path is None and Path(default_name).is_file():
        path = default_name
    if path is not None and not args.write_baseline:
        return Baseline.load(path)
    return None


def _finish_analyzer(args, report, default_name: str) -> int:
    """Shared tail of every tree analyzer subcommand.

    ``--write-baseline`` snapshots the current findings (fingerprinted
    with their source line text so the ratchet survives unrelated
    edits) and exits 0; otherwise the report is emitted and its
    severity-mapped exit code returned.
    """
    from .sanitize import Baseline

    if args.write_baseline:
        target = args.baseline or default_name
        cache: dict[str, list[str]] = {}
        pairs = []
        for diag in report.diagnostics:
            path = getattr(diag.location, "path", None)
            line = getattr(diag.location, "line", None)
            text = ""
            if path and line:
                if path not in cache:
                    cache[path] = Path(path).read_text().splitlines()
                lines = cache[path]
                if 1 <= line <= len(lines):
                    text = lines[line - 1].strip()
            pairs.append((diag, text))
        doc = Baseline.document(pairs)
        Baseline().write(target, doc)
        n_findings = len(doc["findings"])
        print(
            f"baseline with {n_findings} "
            f"finding{'s' if n_findings != 1 else ''} written to {target}"
        )
        return 0
    _print_report(args, report)
    return report.exit_code


def cmd_sanitize(args) -> int:
    from .sanitize import (
        SanitizeConfig,
        collect_schemas,
        discover_files,
        load_registry,
        sanitize_paths,
        updated_registry,
        write_registry,
    )

    config = SanitizeConfig(select=_selected(args))
    try:
        if args.fix:
            registry = load_registry()
            schemas = collect_schemas(discover_files(args.paths))
            doc, refusals = updated_registry(schemas, registry)
            write_registry(doc)
            print(
                f"schema registry re-pinned "
                f"({len(schemas)} module{'s' if len(schemas) != 1 else ''})"
            )
            for message in refusals:
                logger.error("error[sanitize/fix]: %s", message)
            if refusals:
                return 1
        baseline = _analyzer_baseline(args, "sanitize-baseline.json")
        report = sanitize_paths(args.paths, config, baseline=baseline)
        for merge in _sanitize_merges(args):
            merged = merge(args.paths, _selected(args), baseline)
            report.diagnostics.extend(
                d for d in merged.diagnostics
                # the per-file pass already reported unparseable files
                if d.rule != "parse/syntax-error"
            )
            report.diagnostics.sort(key=lambda d: d.sort_key)
            report.suppressed += merged.suppressed
    except SanitizeError as exc:
        logger.error("error[sanitize/usage]: %s", exc)
        return 2
    return _finish_analyzer(args, report, "sanitize-baseline.json")


def _sanitize_merges(args):
    """The whole-program analyses ``sanitize --flow/--perf`` fold in.

    With an explicit ``--baseline`` the one ratchet file applies to
    everything; otherwise each merged family falls back to its own
    default baseline (``flow-baseline.json``/``perf-baseline.json``),
    exactly as its standalone subcommand would.
    """
    merges = []
    if args.flow:

        def run_flow(paths, select, baseline):
            from .flow import FlowConfig, analyze_paths

            if args.baseline is None:
                baseline = _analyzer_baseline(args, "flow-baseline.json")
            return analyze_paths(
                paths, FlowConfig(select=select), baseline=baseline
            )

        merges.append(run_flow)
    if args.perf:

        def run_perf(paths, select, baseline):
            from .perf import PerfConfig, analyze_paths

            if args.baseline is None:
                baseline = _analyzer_baseline(args, "perf-baseline.json")
            return analyze_paths(
                paths, PerfConfig(select=select), baseline=baseline
            )

        merges.append(run_perf)
    if args.race:

        def run_race(paths, select, baseline):
            from .race import RaceConfig, analyze_paths

            if args.baseline is None:
                baseline = _analyzer_baseline(args, "race-baseline.json")
            return analyze_paths(
                paths, RaceConfig(select=select), baseline=baseline
            )

        merges.append(run_race)
    if args.shape:

        def run_shape(paths, select, baseline):
            from .shape import ShapeConfig, analyze_paths

            if args.baseline is None:
                baseline = _analyzer_baseline(args, "shape-baseline.json")
            return analyze_paths(
                paths, ShapeConfig(select=select), baseline=baseline
            )

        merges.append(run_shape)
    return merges


def cmd_flow(args) -> int:
    from .flow import FlowConfig, analyze_paths, build_program, graph_json

    config = FlowConfig(select=_selected(args))
    try:
        if args.graph:
            doc = graph_json(build_program(args.paths))
            Path(args.graph).write_text(json.dumps(doc, indent=2) + "\n")
            # stderr: stdout must stay a clean report under --json
            logger.info(
                "call graph with %d nodes, %d edges written to %s",
                len(doc["nodes"]), len(doc["edges"]), args.graph,
            )
        baseline = _analyzer_baseline(args, "flow-baseline.json")
        report = analyze_paths(args.paths, config, baseline=baseline)
    except SanitizeError as exc:
        logger.error("error[flow/usage]: %s", exc)
        return 2
    return _finish_analyzer(args, report, "flow-baseline.json")


def cmd_race(args) -> int:
    from .race import RaceConfig, analyze_paths, build_analysis, model_json

    config = RaceConfig(select=_selected(args))
    try:
        if args.graph:
            analysis, _, _ = build_analysis(args.paths, config)
            doc = model_json(analysis)
            Path(args.graph).write_text(json.dumps(doc, indent=2) + "\n")
            # stderr: stdout must stay a clean report under --json
            logger.info(
                "concurrency model with %d functions, %d module "
                "handles written to %s",
                len(doc["functions"]), len(doc["handles"]), args.graph,
            )
        baseline = _analyzer_baseline(args, "race-baseline.json")
        report = analyze_paths(args.paths, config, baseline=baseline)
    except SanitizeError as exc:
        logger.error("error[race/usage]: %s", exc)
        return 2
    return _finish_analyzer(args, report, "race-baseline.json")


def cmd_shape(args) -> int:
    from .shape import ShapeConfig, analyze_paths, build_analysis, model_json

    config = ShapeConfig(select=_selected(args))
    try:
        if args.graph:
            analysis, _, _ = build_analysis(args.paths, config)
            doc = model_json(analysis)
            Path(args.graph).write_text(json.dumps(doc, indent=2) + "\n")
            # stderr: stdout must stay a clean report under --json
            logger.info(
                "dtype/ndim model with %d functions written to %s",
                len(doc["functions"]), args.graph,
            )
        baseline = _analyzer_baseline(args, "shape-baseline.json")
        report = analyze_paths(args.paths, config, baseline=baseline)
    except SanitizeError as exc:
        logger.error("error[shape/usage]: %s", exc)
        return 2
    return _finish_analyzer(args, report, "shape-baseline.json")


def cmd_perf(args) -> int:
    from .perf import PerfConfig, analyze_paths, worklist_paths

    config = PerfConfig(select=_selected(args), profile=args.profile_data)
    try:
        if args.worklist:
            worklist = worklist_paths(args.paths, config)
            print(json.dumps(worklist.to_json(), indent=2))
            n = len(worklist.entries)
            print(
                f"worklist: {n} ranked candidate{'s' if n != 1 else ''}",
                file=sys.stderr,
            )
            return 0
        baseline = _analyzer_baseline(args, "perf-baseline.json")
        report = analyze_paths(args.paths, config, baseline=baseline)
    except (SanitizeError, ObsError) as exc:
        logger.error("error[perf/usage]: %s", exc)
        return 2
    return _finish_analyzer(args, report, "perf-baseline.json")


def _add_tree_analyzer_args(
    p: argparse.ArgumentParser,
    *,
    paths_help: str,
    select_example: str,
    default_baseline: str,
) -> None:
    """The argparse wiring every source-tree analyzer shares.

    ``sanitize``, ``flow`` and ``perf`` all take positional paths,
    ``--json``, ``--select`` and the ratcheted-baseline pair; declaring
    them once keeps the families flag-compatible by construction.
    """
    p.add_argument("paths", nargs="*", default=["src"], help=paths_help)
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON")
    p.add_argument("--select", action="append", metavar="PREFIX",
                   help="only run rules whose id starts with PREFIX "
                        f"(repeatable), e.g. --select {select_example}")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="baseline of grandfathered findings (default: "
                        f"{default_baseline} when present)")
    p.add_argument("--write-baseline", action="store_true",
                   help="write the current findings to the baseline file "
                        "and exit 0 (the ratchet: entries only disappear)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable Plaxton-Suel (SPAA 1992) lower-bound toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more log output (repeatable; also REPRO_LOG)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less log output (repeatable)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("attack", help="run the adversary against a network")
    p.add_argument("--family", default="random_iterated",
                   help="bitonic | random_iterated | butterfly | ...")
    p.add_argument("-n", type=int, default=64)
    p.add_argument("--blocks", type=int, default=3)
    p.add_argument("-k", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--certificate", metavar="PATH",
                   help="write the verified fooling pair as JSON")
    p.add_argument("--file", help="attack a serialised network JSON instead "
                   "(class structure is recognised automatically)")
    p.add_argument("--store", metavar="DIR",
                   help="read/write results through a content-addressed "
                        "artifact store; cached certificates are re-verified "
                        "against the rebuilt network before being trusted "
                        "(network build seeds derive from the job hash)")
    p.add_argument("--trace", metavar="PATH",
                   help="record a structured trace (JSONL) of the attack; "
                        "analyse it with 'repro stats PATH'")
    p.add_argument("--profile", action="store_const", const=True,
                   default=None,
                   help="print CPU/memory hotspots after the attack "
                        "(also via REPRO_PROFILE=1)")
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("verify", help="0-1 verification of a network")
    p.add_argument("--sorter", default="bitonic",
                   help=f"one of: {', '.join(sorter_names())}")
    p.add_argument("-n", type=int, default=16)
    p.add_argument("--file", help="serialised network JSON instead")
    p.add_argument("--max-wires", type=int, default=24)
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable verdict document "
                        "(the same shape the certificate service returns)")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("serve", help="run the certificate daemon over an "
                                     "artifact store")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="TCP port (0 picks a free one; the bound port is "
                        "announced on stdout)")
    p.add_argument("--store", metavar="DIR", default="farm-store",
                   help="artifact store directory (default: farm-store)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes for cold-miss batches")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="admitted requests before answering 429")
    p.add_argument("--max-batch", type=int, default=32,
                   help="largest cold-miss batch per pool dispatch")
    p.add_argument("--batch-delay", type=float, default=0.01,
                   help="seconds to wait coalescing a cold-miss batch")
    p.add_argument("--request-timeout", type=float, default=300.0,
                   help="per-request budget before answering 504")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="per-job pool timeout in seconds (default: none)")
    p.add_argument("--trace", metavar="PATH",
                   help="record a structured trace (JSONL) of the daemon; "
                        "analyse it with 'repro stats PATH'")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("query", help="send one request to a running daemon")
    p.add_argument("op", help="attack | verify")
    p.add_argument("--params", default="{}",
                   help='job parameters as JSON, e.g. '
                        '\'{"sorter": "bitonic", "n": 8}\'')
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--timeout", type=float, default=310.0)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("loadgen", help="drive a running daemon with "
                                       "closed-loop load")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--clients", type=int, default=8,
                   help="concurrent closed-loop workers")
    p.add_argument("--requests", type=int, default=16,
                   help="requests per client")
    p.add_argument("--unique", type=int, default=8,
                   help="distinct queries in the round-robin mix")
    p.add_argument("--json", nargs="?", const="-", default=None,
                   metavar="PATH",
                   help="emit the load report as JSON: bare --json prints "
                        "to stdout, --json PATH writes the file and still "
                        "prints the human table")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("top", help="live dashboard over a running daemon "
                                   "or a campaign's heartbeats")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--store", default=None, metavar="DIR",
                   help="watch a farm store's heartbeats instead of a "
                        "serve daemon")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes")
    p.add_argument("--iterations", type=int, default=0,
                   help="stop after N frames (0 = run until Ctrl-C); "
                        "--iterations 1 prints a single frame for scripts")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("route", help="route a permutation")
    p.add_argument("permutation", help="comma-separated targets, e.g. 3,1,0,2")
    p.add_argument("--in-class", action="store_true",
                   help="also build the strict shuffle-based router")
    p.set_defaults(func=cmd_route)

    p = sub.add_parser("render", help="ASCII diagram of a network")
    p.add_argument("--sorter", default="bitonic")
    p.add_argument("-n", type=int, default=8)
    p.add_argument("--file", help="serialised network JSON instead")
    p.add_argument("--summary", action="store_true")
    p.add_argument("--dot", action="store_true",
                   help="emit Graphviz DOT instead of ASCII")
    p.set_defaults(func=cmd_render)

    p = sub.add_parser("experiment", help="run an E1-E13 driver")
    p.add_argument("name", help="e1 .. e13, or 'all'")
    p.add_argument("--save", metavar="DIR", help="archive the table")
    p.add_argument("--seed", type=int, default=None,
                   help="seed for randomized drivers (E2, E8, E9, E11, ...)")
    p.add_argument("--store", metavar="DIR",
                   help="artifact store for the sweep-heavy drivers "
                        "(E8, E11): finished cells are reused after "
                        "re-verification")
    p.add_argument("--trace", metavar="PATH",
                   help="record a structured trace (JSONL) of the run")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("bounds", help="print the bound landscape at n")
    p.add_argument("-n", type=int, default=1 << 16)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("lint", help="static analysis of a network")
    p.add_argument("target",
                   help="sorter name (see 'verify --sorter') or path to a "
                        "serialised network JSON file")
    p.add_argument("-n", "--n", type=int, default=16,
                   help="wire count when target is a sorter name")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON")
    p.add_argument("--fix", metavar="PATH",
                   help="apply all fix-its and write the repaired network")
    p.add_argument("--select", action="append", metavar="PREFIX",
                   help="only run rules whose id starts with PREFIX "
                        "(repeatable), e.g. --select abstract/")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("sanitize", help="static analysis of the repro "
                                        "source tree itself")
    _add_tree_analyzer_args(
        p,
        paths_help="files/directories to analyse (default: src)",
        select_example="determinism/",
        default_baseline="sanitize-baseline.json",
    )
    p.add_argument("--fix", action="store_true",
                   help="re-pin the schema fingerprint registry from the "
                        "tree (refuses field changes without a version "
                        "bump), then re-analyse")
    p.add_argument("--flow", action="store_true",
                   help="also run the whole-program flow analysis "
                        "(see `repro flow`) and merge its findings")
    p.add_argument("--perf", action="store_true",
                   help="also run the hot-path perf analysis "
                        "(see `repro perf`) and merge its findings")
    p.add_argument("--race", action="store_true",
                   help="also run the whole-program concurrency analysis "
                        "(see `repro race`) and merge its findings")
    p.add_argument("--shape", action="store_true",
                   help="also run the array dtype/shape analysis "
                        "(see `repro shape`) and merge its findings")
    p.set_defaults(func=cmd_sanitize)

    p = sub.add_parser("flow", help="whole-program flow analysis of the "
                                    "repro source tree itself")
    _add_tree_analyzer_args(
        p,
        paths_help="files/directories to analyse as one program "
                   "(default: src)",
        select_example="flow/dead",
        default_baseline="flow-baseline.json",
    )
    p.add_argument("--graph", metavar="PATH", default=None,
                   help="also serialise the call graph (nodes, edges, "
                        "per-function facts) to PATH as JSON")
    p.set_defaults(func=cmd_flow)

    p = sub.add_parser("perf", help="profile-guided hot-path analysis of "
                                    "the repro source tree itself")
    _add_tree_analyzer_args(
        p,
        paths_help="files/directories to analyse as one program "
                   "(default: src)",
        select_example="perf/scalar",
        default_baseline="perf-baseline.json",
    )
    # dest avoids the attack/experiment --profile (CPU profiler) toggle
    # that main() inspects on every command
    p.add_argument("--profile", dest="profile_data", metavar="PATH",
                   default=None,
                   help="join a trace JSONL (from --trace) or a profile "
                        "JSON document onto the call graph and rank "
                        "findings by observed hot-path weight")
    p.add_argument("--worklist", action="store_true",
                   help="emit the ranked vectorization worklist as JSON "
                        "(ignores pragmas and the baseline: it is the "
                        "inventory of remaining scalar hot paths)")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser("race", help="whole-program concurrency analysis "
                                    "of the repro source tree itself")
    _add_tree_analyzer_args(
        p,
        paths_help="files/directories to analyse as one program "
                   "(default: src)",
        select_example="race/blocking",
        default_baseline="race-baseline.json",
    )
    p.add_argument("--graph", metavar="PATH", default=None,
                   help="also serialise the concurrency model (contexts, "
                        "blocking/fork/dispatch facts, shared-state "
                        "writes, module handles) to PATH as JSON")
    p.set_defaults(func=cmd_race)

    p = sub.add_parser("shape", help="array dtype/shape abstract "
                                     "interpretation of the repro source "
                                     "tree itself")
    _add_tree_analyzer_args(
        p,
        paths_help="files/directories to analyse as one program "
                   "(default: src)",
        select_example="shape/implicit",
        default_baseline="shape-baseline.json",
    )
    p.add_argument("--graph", metavar="PATH", default=None,
                   help="also serialise the dtype/ndim model (per-function "
                        "return summaries, constructor sites, inferred "
                        "abstract values) to PATH as JSON")
    p.set_defaults(func=cmd_shape)

    p = sub.add_parser("farm", help="parallel campaign runner with a "
                                    "content-addressed artifact store")
    farm_sub = p.add_subparsers(dest="farm_command", required=True)

    fp = farm_sub.add_parser("run", help="run a campaign spec")
    fp.add_argument("spec", help="path to a campaign spec JSON "
                                 "(see docs/FARM.md)")
    fp.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: the spec's setting)")
    fp.add_argument("--store", metavar="DIR", default="farm-store",
                    help="artifact store directory (default: farm-store)")
    fp.add_argument("--resume", action="store_true",
                    help="skip jobs whose artifacts are already stored; "
                        "hits are revalidated, counted and reported")
    fp.add_argument("--timeout", type=float, default=None,
                    help="per-job timeout in seconds (overrides the spec)")
    fp.add_argument("--retries", type=int, default=None,
                    help="retries per failing job (overrides the spec)")
    fp.add_argument("--json", action="store_true",
                    help="emit the summary and table as JSON")
    fp.add_argument("--save", metavar="DIR",
                    help="archive the campaign table like an experiment")
    fp.add_argument("--trace", metavar="PATH", nargs="?",
                    const="farm-trace.jsonl", default=None,
                    help="record a structured trace of the campaign, "
                         "including per-job worker spans "
                         "(default path: farm-trace.jsonl)")
    fp.set_defaults(func=cmd_farm_run)

    fp = farm_sub.add_parser("status", help="inventory an artifact store")
    fp.add_argument("--live", action="store_true",
                    help="show live campaign heartbeats (per-worker "
                         "liveness, queue depth, throughput) instead of "
                         "the store inventory")
    fp.add_argument("--store", metavar="DIR", default="farm-store")
    fp.add_argument("--json", action="store_true")
    fp.set_defaults(func=cmd_farm_status)

    p = sub.add_parser("stats", help="analyse a trace written by --trace")
    p.add_argument("trace_file", help="path to a trace JSONL file")
    p.add_argument("--json", action="store_true",
                   help="emit the full analysis as JSON")
    p.add_argument("--top", type=int, default=10,
                   help="number of slowest spans to list (default 10)")
    p.set_defaults(func=cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    ``BrokenPipeError`` is handled here, around the *whole* command --
    any subcommand's stdout (reports, worklists, graph summaries) may
    be cut short by ``| head``, and that is the consumer's prerogative,
    not an error.  Redirecting the dead stdout to ``/dev/null`` also
    keeps the interpreter's shutdown flush quiet.
    """
    try:
        return _run_command(argv)
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _run_command(argv: list[str] | None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    trace_target = getattr(args, "trace", None)
    profile_handle = None
    with contextlib.ExitStack() as stack:
        if trace_target:
            stack.enter_context(tracing(trace_target))
        # The flight recorder attaches after tracing so an explicit
        # --trace sink gets teed rather than replaced.
        recorder = (
            stack.enter_context(flight_recording())
            if flight_enabled() else None
        )
        if hasattr(args, "profile") and profiling_enabled(args.profile):
            profile_handle = stack.enter_context(
                profile_section(args.command, enabled=True)
            )
        try:
            code = args.func(args)
        except ReproError as exc:
            # Backstop for library errors no subcommand mapped itself:
            # a diagnostic line and exit 2, never a stack trace.
            logger.error("error[%s]: %s", args.command, exc)
            if recorder is not None:
                dump = recorder.dump(f"error:{args.command}")
                if dump is not None:
                    logger.error("flight recording dumped to %s", dump)
            code = 2
    if trace_target:
        logger.info("trace written to %s", trace_target)
    if profile_handle is not None and profile_handle.report is not None:
        print(profile_handle.report.format(), file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
