"""E12 -- the ascend-descend vs strict-ascend separation (Sections 1, 6).

Claim: the lower bound "establishes a non-trivial separation between the
power of 'ascend-descend' machines (e.g., the shuffle-exchange when both
shuffling and unshuffling are permitted) and strict 'ascend' machines
(shuffle only)": with both permutations, nearly-logarithmic-depth
sorting exists [8, 12], while shuffle-only sorting needs
:math:`\\Omega(\\lg^2 n/\\lg\\lg n)`.

Measured analogue on the routing task (where both sides are
constructive in this repository): the two-permutation machine routes
*any* permutation in ``2 lg n`` steps
(:func:`~repro.machines.shuffle_unshuffle.benes_shuffle_unshuffle_program`),
while our best strict shuffle-only router takes ``lg^2 n`` steps -- and,
crucially, the *sorting* side of the strict class is provably pinned by
the adversary: the table's last columns run the adversary against
shuffle-only networks of exactly the ascend-descend routing depth
(2 blocks), always obtaining a verified fooling pair.

Expected shape: the ``2 lg n`` vs ``lg^2 n`` columns diverge; every
depth-``2 lg n`` strict network in the sweep is defeated.
"""

from __future__ import annotations

import numpy as np

from ..core.fooling import prove_not_sorting
from ..machines.routing import sort_route_program
from ..machines.shuffle_unshuffle import (
    benes_shuffle_unshuffle_program,
    is_shuffle_unshuffle_based,
    shuffle_unshuffle_route_depth,
)
from ..networks.permutations import random_permutation
from .harness import Table
from .workloads import iterated_family

__all__ = ["run"]


def run(
    exponents: tuple[int, ...] = (2, 3, 4, 6, 8),
    trials: int = 6,
    attack_families: tuple[str, ...] = ("random_iterated", "bitonic"),
    seed: int = 0,
) -> Table:
    """Routing depths of the two machine classes + adversary verdicts."""
    table = Table(
        experiment="E12",
        title="Ascend-descend vs strict ascend",
        claim=(
            "shuffle+unshuffle routes any permutation in 2 lg n steps; "
            "shuffle-only networks of that depth are provably non-sorting"
        ),
        columns=[
            "n",
            "su_route_steps",
            "su_verified",
            "strict_route_steps",
            "strict_verified",
            "strict_2block_defeated",
        ],
    )
    rng = np.random.default_rng(seed)
    for e in exponents:
        n = 1 << e
        su_ok = True
        strict_ok = True
        for _ in range(trials):
            perm = random_permutation(n, rng)
            prog = benes_shuffle_unshuffle_program(perm)
            su_ok &= is_shuffle_unshuffle_based(prog)
            out = prog.to_network().evaluate(np.arange(n, dtype=np.int64))
            su_ok &= all(out[perm(i)] == i for i in range(n))
            sprog = sort_route_program(perm)
            strict_ok &= sprog.is_shuffle_based()
            out2 = sprog.to_network().evaluate(np.arange(n, dtype=np.int64))
            strict_ok &= all(out2[perm(i)] == i for i in range(n))
        # strict shuffle-only networks of depth 2 lg n (= 2 blocks): the
        # adversary must defeat every one we try.  Only meaningful when
        # 2 blocks is a strict truncation (lg n > 2); at tiny n two
        # blocks can already be a complete sorter.
        defeated: bool | None = None
        if e > 2:
            defeated = True
            for family in attack_families:
                network = iterated_family(family, n, 2, rng)
                outcome = prove_not_sorting(
                    network, rng=np.random.default_rng(seed)
                )
                defeated &= outcome.proved_not_sorting
        row = {
            "n": n,
            "su_route_steps": shuffle_unshuffle_route_depth(n),
            "su_verified": su_ok,
            "strict_route_steps": e * e,
            "strict_verified": strict_ok,
        }
        if defeated is not None:
            row["strict_2block_defeated"] = defeated
        table.add_row(**row)
    table.notes.append(
        "routing is the measurable proxy where both classes are "
        "constructive here; for sorting, the ascend-descend side's "
        "near-lg n networks [8, 12] are existence results while the "
        "strict side is pinned by this paper's adversary."
    )
    return table
