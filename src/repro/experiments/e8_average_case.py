"""E8 -- average case: networks that sort most inputs but not all.

Claim (Section 5, after Leighton-Plaxton [8]): there are shuffle-based
networks of depth :math:`O(\\lg n \\lg\\lg n)` that sort all but a tiny
fraction of inputs, so the :math:`\\Omega(\\lg^2 n/\\lg\\lg n)` bound of
this paper cannot extend to the average case -- it is a genuinely
worst-case phenomenon.

Two measured stand-ins (substitutions documented in DESIGN.md):

* **faulty bitonic** -- Batcher's sorter with exactly one comparator
  deleted from a chosen phase.  Still strictly in-class; sorts 50-90% of
  random inputs (more the earlier the deleted gate, because later phases
  usually repair the damage) while provably failing on some input.  The
  sweep also measures the adversary's *incompleteness*: it reliably
  catches a final-phase deletion (the surviving pair is exactly the
  deleted comparison) but misses earlier ones, underlining that it is a
  lower-bound tool, not a decision procedure.
* **sorting-biased random blocks** -- random reverse delta blocks whose
  comparators all point toward lower wire indices, composed with
  identity inter-block permutations.  Sorted fraction climbs with depth
  while the adversary still produces verified fooling pairs -- the
  separation in a single family.

Expected shape: ``sorted_fraction`` well above 0 with
``is_sorter = no`` everywhere; adversary certificates concentrated on
late-phase faults.
"""

from __future__ import annotations

import numpy as np

from ..analysis.verify import is_sorting_network, random_sorting_fraction
from ..core.fooling import prove_not_sorting
from ..networks.builders import bitonic_iterated_rdn, random_reverse_delta
from ..networks.delta import IteratedReverseDeltaNetwork, ReverseDeltaNetwork
from ..networks.gates import Gate, Op
from .harness import Table

__all__ = ["run", "sorting_biased_block", "sorting_biased_network", "faulty_bitonic"]


def sorting_biased_block(n: int, rng: np.random.Generator) -> ReverseDeltaNetwork:
    """A random reverse delta block whose comparators all point "down".

    Random pairings as in :func:`random_reverse_delta`, but each
    comparator routes its min to the lower-numbered wire, so composing
    blocks monotonically reduces the inversion count.
    """
    base = random_reverse_delta(n, rng, p_minus=0.0)

    def orient(node: ReverseDeltaNetwork) -> ReverseDeltaNetwork:
        if node.is_leaf:
            return node
        final = tuple(
            Gate(g.a, g.b, Op.PLUS if g.a < g.b else Op.MINUS)
            for g in node.final
        )
        return ReverseDeltaNetwork.node(orient(node.child0), orient(node.child1), final)

    return orient(base)


def sorting_biased_network(
    n: int, blocks: int, rng: np.random.Generator
) -> IteratedReverseDeltaNetwork:
    """``blocks`` sorting-biased blocks, identity inter-block permutations.

    Identity inter-block permutations keep every comparator pointing the
    same global direction; a random permutation between blocks would
    scramble the orientation and destroy the usually-sorts behaviour.
    """
    entries = [(None, sorting_biased_block(n, rng)) for _ in range(blocks)]
    return IteratedReverseDeltaNetwork(n, entries)


def faulty_bitonic(
    n: int, phase: int, gate_index: int = 0
) -> IteratedReverseDeltaNetwork:
    """The bitonic sorter with one comparator removed from ``phase``.

    The gate is deleted from the phase's *root* level (the stride-1
    comparisons executed last within the phase).  ``phase`` is 1-based.
    """
    base = bitonic_iterated_rdn(n)
    blocks = list(base.blocks)
    perm, blk = blocks[phase - 1]

    def strip(node: ReverseDeltaNetwork) -> ReverseDeltaNetwork:
        if node.is_leaf:
            return node
        final = node.final
        if node.levels == blk.levels and final:
            final = tuple(g for i, g in enumerate(final) if i != gate_index)
        return ReverseDeltaNetwork.node(strip(node.child0), strip(node.child1), final)

    blocks[phase - 1] = (perm, strip(blk))
    return IteratedReverseDeltaNetwork(n, blocks)


def _attack_cell(flat, net, trials: int, seed: int) -> dict:
    """The cacheable measurement of one sweep cell.

    The certificate (when the attack succeeds) rides along so a store
    hit can re-verify it against the freshly rebuilt network.
    """
    frac = random_sorting_fraction(flat, trials, np.random.default_rng(seed))
    outcome = prove_not_sorting(net, rng=np.random.default_rng(seed))
    cert = outcome.certificate
    return {
        "sorted_fraction": frac,
        "fooling_pair": outcome.proved_not_sorting,
        "survivor": len(outcome.run.special_set),
        "certificate": cert.to_json() if cert is not None else None,
    }


def _cell_revalidator(flat):
    """Cache hits are trusted only after the stored certificate verifies
    against the network rebuilt by *this* invocation."""

    def revalidate(result: dict) -> bool:
        cert_doc = result.get("certificate")
        if cert_doc is None:
            return True
        from ..core.certificates import NonSortingCertificate

        return NonSortingCertificate.from_json(cert_doc).verify(
            flat, strict=False
        )

    return revalidate


def run(
    exponents: tuple[int, ...] = (5, 6),
    trials: int = 2000,
    biased_exponent: int = 4,
    biased_max_blocks: int = 12,
    verify_zero_one_up_to: int = 1 << 4,
    seed: int = 0,
    store=None,
) -> Table:
    """Faulty-bitonic phase sweep plus biased-random depth curve.

    ``store`` (a :class:`repro.farm.ArtifactStore`) memoises the per-cell
    attack/sampling work; resumed sweeps skip finished cells after
    re-verifying their stored certificates.
    """
    from ..farm.store import cached

    table = Table(
        experiment="E8",
        title="Average case: sorted fraction vs worst-case verdict",
        claim=(
            "shallow / slightly-damaged shuffle-based networks sort most "
            "inputs while provably failing on some (Section 5)"
        ),
        columns=[
            "family",
            "n",
            "variant",
            "stages",
            "sorted_fraction",
            "is_sorter",
            "fooling_pair",
            "survivor",
        ],
    )
    hits = 0
    cells = 0

    for e in exponents:
        n = 1 << e
        for phase in range(1, e + 1):
            net = faulty_bitonic(n, phase)
            flat = net.to_network()
            params = {
                "experiment": "E8",
                "cell": "faulty_bitonic",
                "n": n,
                "phase": phase,
                "trials": trials,
                "seed": seed,
            }
            result, hit = cached(
                store,
                params,
                lambda: _attack_cell(flat, net, trials, seed),
                revalidate=_cell_revalidator(flat),
            )
            cells += 1
            hits += hit
            row = {
                "family": "faulty_bitonic",
                "n": n,
                "variant": f"drop@phase{phase}",
                "stages": flat.depth,
                "sorted_fraction": result["sorted_fraction"],
                "fooling_pair": result["fooling_pair"],
                "survivor": result["survivor"],
            }
            if n <= verify_zero_one_up_to:
                row["is_sorter"] = is_sorting_network(flat)
            table.add_row(**row)

    n = 1 << biased_exponent
    rng = np.random.default_rng(seed + 1)
    network = sorting_biased_network(n, biased_max_blocks, rng)
    for blocks in range(1, biased_max_blocks + 1):
        prefix = network.truncated(blocks)
        flat = prefix.to_network()
        params = {
            "experiment": "E8",
            "cell": "biased_random",
            "n": n,
            "blocks": blocks,
            "max_blocks": biased_max_blocks,
            "trials": trials,
            "seed": seed,
        }
        result, hit = cached(
            store,
            params,
            lambda: _attack_cell(flat, prefix, trials, seed),
            revalidate=_cell_revalidator(flat),
        )
        cells += 1
        hits += hit
        table.add_row(
            family="biased_random",
            n=n,
            variant=f"{blocks} blocks",
            stages=flat.depth,
            sorted_fraction=result["sorted_fraction"],
            is_sorter=is_sorting_network(flat)
            if n <= verify_zero_one_up_to
            else None,
            fooling_pair=result["fooling_pair"],
            survivor=result["survivor"],
        )
    if store is not None:
        table.notes.append(
            f"store: {hits}/{cells} cells served from cache "
            "(certificates re-verified against rebuilt networks)"
        )
    table.notes.append(
        "faulty bitonic: earlier faults are usually repaired by later "
        "phases (higher sorted_fraction) and escape the adversary -- "
        "soundness without completeness; a final-phase fault is caught "
        "with |D| = 2, exactly the deleted comparison."
    )
    return table
