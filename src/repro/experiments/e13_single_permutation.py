"""E13 -- probing Section 6's open question: single-permutation networks.

The paper closes by asking "whether any small-depth sorting network
exists that is based on a single permutation".  This is an *open
problem*; E13 is therefore framed as an exploratory probe, not a
reproduction of a claim: for several candidate permutations
:math:`\\Pi` we search (hill-climbing over the op vectors, scored by the
number of unsorted 0-1 inputs) for the best depth-``D``
single-permutation network, and report how close each permutation gets
to sorting.

What the probe shows at laptop scale:

* the shuffle reaches witness count 0 (a true sorter) at
  ``D = lg² n`` -- Batcher's construction is single-permutation, so the
  open question is really about *small* depth;
* some permutations (e.g. the identity) are structurally hopeless: with
  :math:`\\Pi = id` only fixed adjacent pairs ever interact, so the
  residual witness count stays large no matter the labelling;
* mixing permutations (random, bit-reversal-composed) land in between.

Columns: residual 0-1 witnesses after the search (0 = found a sorting
network), plus the theoretical note of whether the paper's lower bound
machinery applies (only for the shuffle itself).
"""

from __future__ import annotations

import numpy as np

from ..analysis.zero_one import witness_count
from ..networks.gates import Op
from ..networks.permutations import (
    Permutation,
    bit_reversal_permutation,
    identity_permutation,
    random_permutation,
    shuffle_permutation,
)
from ..networks.registers import RegisterProgram, RegisterStep
from .harness import Table

__all__ = ["run", "hill_climb_single_perm", "single_perm_program"]

_OPS = (Op.PLUS, Op.MINUS, Op.NOP, Op.SWAP)


def single_perm_program(
    perm: Permutation, op_grid: list[list[Op]]
) -> RegisterProgram:
    """A register program using the same permutation at every step."""
    steps = [RegisterStep(perm=perm, ops=tuple(row)) for row in op_grid]
    return RegisterProgram(perm.n, steps)


def hill_climb_single_perm(
    perm: Permutation,
    depth: int,
    rng: np.random.Generator,
    iterations: int = 400,
) -> tuple[int, RegisterProgram]:
    """Greedy local search for op vectors minimising 0-1 witnesses.

    Starts from all-``+`` labels, then repeatedly mutates one pair label
    and keeps the change iff the number of unsorted binary inputs does
    not increase.  Returns ``(residual_witnesses, best_program)``.
    """
    n = perm.n
    pairs = n // 2
    grid: list[list[Op]] = [[Op.PLUS] * pairs for _ in range(depth)]

    def score(g) -> int:
        return witness_count(single_perm_program(perm, g).to_network(), max_wires=n)

    best = score(grid)
    for _ in range(iterations):
        if best == 0:
            break
        t = int(rng.integers(depth))
        k = int(rng.integers(pairs))
        old = grid[t][k]
        new = _OPS[int(rng.integers(len(_OPS)))]
        if new is old:
            continue
        grid[t][k] = new
        s = score(grid)
        if s <= best:
            best = s
        else:
            grid[t][k] = old
    return best, single_perm_program(perm, grid)


def run(
    n: int = 8,
    depth_factor: float = 1.0,
    iterations: int = 400,
    seed: int = 0,
) -> Table:
    """Probe several single permutations at depth ``lg² n * depth_factor``."""
    d = n.bit_length() - 1
    depth = max(1, round(d * d * depth_factor))
    rng = np.random.default_rng(seed)
    candidates: dict[str, Permutation] = {
        "shuffle": shuffle_permutation(n),
        "identity": identity_permutation(n),
        "bit_reversal*shuffle": bit_reversal_permutation(n).then(
            shuffle_permutation(n)
        ),
        "random": random_permutation(n, rng),
    }
    table = Table(
        experiment="E13",
        title="Open problem probe: single-permutation networks",
        claim=(
            "Section 6 asks whether small-depth single-permutation sorting "
            "networks exist; exploratory search, not a paper claim"
        ),
        columns=[
            "permutation",
            "n",
            "depth",
            "residual_witnesses",
            "found_sorter",
            "lower_bound_applies",
        ],
    )
    for name, perm in candidates.items():
        residual, _prog = hill_climb_single_perm(
            perm, depth, np.random.default_rng(seed), iterations=iterations
        )
        table.add_row(
            permutation=name,
            n=n,
            depth=depth,
            residual_witnesses=residual,
            found_sorter=residual == 0,
            lower_bound_applies=(name == "shuffle"),
        )
    table.notes.append(
        "hill-climbing over {+,-,0,1} labels scored by unsorted 0-1 inputs; "
        "residual 0 means an actual single-permutation sorting network was "
        "found at this depth.  The paper's bound constrains only the "
        "shuffle row."
    )
    return table
