"""E2 -- Lemma 4.1 on concrete blocks: retention and set growth.

Claim (Lemma 4.1): one ``l``-level reverse delta block refines the
pattern into at most ``t(l) = k^3 + l k^2`` noncolliding sets that
together retain at least ``|A| (1 - l/k^2)`` of the special elements.

Expected shape: measured ``|B|`` must dominate the floor for the argmin
strategy (usually retaining everything); the ``worst`` strategy shows
how much slack the averaging argument leaves; the number of *nonempty*
sets stays far below the nominal ``t(l)``.
"""

from __future__ import annotations

import numpy as np

from ..core.adversary import run_lemma41, t_sets
from ..core.pattern import all_medium_pattern
from .harness import Table
from .workloads import BLOCK_FAMILIES

__all__ = ["run"]


def run(
    exponents: tuple[int, ...] = (4, 6, 8),
    families: tuple[str, ...] = ("butterfly", "random", "random_sparse"),
    ks: tuple[int, ...] | None = None,
    strategies: tuple[str, ...] = ("argmin", "random", "worst"),
    seed: int = 0,
) -> Table:
    """Sweep block families, sizes, ``k`` values, and shift strategies."""
    table = Table(
        experiment="E2",
        title="Lemma 4.1: one-block special-set retention",
        claim="|B| >= |A| (1 - l/k^2) across t(l) = k^3 + l k^2 sets",
        columns=[
            "family",
            "n",
            "k",
            "strategy",
            "A",
            "B",
            "floor",
            "retained",
            "nonempty_sets",
            "t_l",
            "collisions",
        ],
    )
    rng = np.random.default_rng(seed)
    for name in families:
        build = BLOCK_FAMILIES[name]
        for e in exponents:
            n = 1 << e
            k_values = ks if ks is not None else (max(2, e // 2), e)
            block = build(n, rng)
            pattern = all_medium_pattern(n)
            for k in k_values:
                for strategy in strategies:
                    res = run_lemma41(
                        block,
                        pattern,
                        k,
                        shift_strategy=strategy,
                        rng=np.random.default_rng(seed + 1),
                    )
                    table.add_row(
                        family=name,
                        n=n,
                        k=k,
                        strategy=strategy,
                        A=res.a_size,
                        B=res.b_size,
                        floor=res.guarantee,
                        retained=res.retained_fraction,
                        nonempty_sets=len(res.sets),
                        t_l=t_sets(block.levels, k),
                        collisions=res.trace.total_collisions,
                    )
    table.notes.append(
        "argmin rows must satisfy B >= floor (asserted inside run_lemma41); "
        "'worst' deliberately violates the averaging choice to show slack."
    )
    return table
