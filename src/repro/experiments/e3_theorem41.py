"""E3 -- Theorem 4.1 across blocks: survivor size vs the proof's floor.

Claim (Theorem 4.1): after ``d`` blocks (``l = k = lg n``) the adversary
holds a noncolliding special set of size at least :math:`n/\\lg^{4d} n`.

Expected shape: the measured survivor curve dominates the guarantee by a
wide margin (the floor is loose: it pays a full :math:`1/t(l)` factor per
block while the measured largest set typically shrinks far slower);
against the full *bitonic sorter* the survivor must reach exactly 1 at
the last block -- the adversary dying is forced by correctness.
"""

from __future__ import annotations

import numpy as np

from ..core.iterate import run_adversary, theorem41_guarantee
from .harness import Table
from .workloads import iterated_family

__all__ = ["run"]


def run(
    exponents: tuple[int, ...] = (5, 7),
    families: tuple[str, ...] = ("random_iterated", "bitonic"),
    blocks: int | None = None,
    set_choice: str = "largest",
    seed: int = 0,
) -> Table:
    """Per-block survivor trace for each (family, n)."""
    table = Table(
        experiment="E3",
        title="Theorem 4.1: survivor size per block",
        claim="|D| >= n / lg^{4d} n after d blocks (l = k = lg n)",
        columns=[
            "family",
            "n",
            "block",
            "survivor",
            "guarantee",
            "union",
            "entering",
            "nonempty_sets",
            "collisions",
        ],
    )
    rng = np.random.default_rng(seed)
    for name in families:
        for e in exponents:
            n = 1 << e
            d = blocks if blocks is not None else e
            network = iterated_family(name, n, d, rng)
            run_result = run_adversary(
                network,
                set_choice=set_choice,
                rng=np.random.default_rng(seed),
                stop_when_dead=False,
            )
            for rec in run_result.records:
                table.add_row(
                    family=name,
                    n=n,
                    block=rec.block_index + 1,
                    survivor=rec.chosen_size,
                    guarantee=theorem41_guarantee(n, rec.block_index + 1),
                    union=rec.union_size,
                    entering=rec.entering_size,
                    nonempty_sets=rec.nonempty_sets,
                    collisions=rec.collisions,
                )
    table.notes.append(
        "survivor >= guarantee row-by-row is the executable Theorem 4.1; "
        "the bitonic family must end at survivor = 1 (it sorts)."
    )
    return table
