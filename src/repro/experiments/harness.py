"""Shared experiment harness: tables, formatting, result persistence.

Every experiment driver (``e1`` .. ``e10``) returns a :class:`Table`;
benchmarks print it and archive it next to the benchmark output so
EXPERIMENTS.md's claimed-vs-measured entries can be regenerated with one
command.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .._util import json_native
from ..errors import RegistryError, ReproError
from ..obs import events as obs_events
from ..obs.trace import get_tracer

__all__ = ["Table", "format_cell", "experiment_span"]


def experiment_span(experiment: str, **cell: Any):
    """A span tagging one grid cell of an experiment sweep.

    Only scalar cell coordinates become span attributes (lists and dicts
    are summarised by length), keeping records one-line small no matter
    how big a driver's parameter grid gets.
    """
    attrs: dict[str, Any] = {"experiment": experiment}
    for key, value in cell.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            attrs[key] = value
        elif isinstance(value, (list, tuple, dict, set, frozenset)):
            attrs[key] = f"<{len(value)} items>"
        else:
            attrs[key] = str(value)
    return get_tracer().span(obs_events.SPAN_CELL, **attrs)


def format_cell(value: Any) -> str:
    """Human-friendly cell rendering (floats to 4 significant digits)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A printable experiment result: title, claim, columns, rows, notes."""

    experiment: str
    title: str
    claim: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row (keys must be a subset of the columns)."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise RegistryError(f"row has unknown columns: {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def format(self) -> str:
        """Render as an aligned plain-text table."""
        header = [self.columns]
        body = [
            [format_cell(row.get(c, "")) for c in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(line[i]) for line in header + body) if (header + body) else 0
            for i in range(len(self.columns))
        ]
        lines = [
            f"== {self.experiment}: {self.title} ==",
            f"claim: {self.claim}",
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for cells in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_payload(self) -> dict[str, Any]:
        """The JSON-compatible dict :meth:`save` writes.

        All cell values are converted to native Python types
        (``np.int64`` → ``int``, ``np.bool_`` → ``bool``, ...) so the
        dump round-trips faithfully through :meth:`from_payload` instead
        of silently stringifying NumPy scalars.
        """
        return {
            "experiment": self.experiment,
            "title": self.title,
            "claim": self.claim,
            "columns": list(self.columns),
            "rows": json_native(self.rows),
            "notes": list(self.notes),
        }

    @classmethod
    def from_payload(cls, doc: dict[str, Any]) -> "Table":
        """Inverse of :meth:`to_payload`."""
        try:
            return cls(
                experiment=doc["experiment"],
                title=doc["title"],
                claim=doc["claim"],
                columns=list(doc["columns"]),
                rows=[dict(row) for row in doc["rows"]],
                notes=list(doc.get("notes", [])),
            )
        except (KeyError, TypeError) as exc:
            raise ReproError(f"malformed table document: {exc}") from exc

    @classmethod
    def load(cls, path: str | Path) -> "Table":
        """Load a table previously archived by :meth:`save` (the .json)."""
        try:
            doc = json.loads(Path(path).read_text())
        except OSError as exc:
            raise ReproError(f"cannot read table: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ReproError(f"table file is not valid JSON: {exc}") from exc
        return cls.from_payload(doc)

    def save(self, directory: str | Path) -> Path:
        """Write both the text rendering and a JSON dump; returns the txt path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        txt = directory / f"{self.experiment.lower()}.txt"
        txt.write_text(self.format() + "\n")
        (directory / f"{self.experiment.lower()}.json").write_text(
            json.dumps(self.to_payload(), indent=2)
        )
        return txt

    def __str__(self) -> str:
        return self.format()
