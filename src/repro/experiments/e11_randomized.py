"""E11 -- randomization defeats the worst case (Section 5).

Claim: adding Leighton-Plaxton's randomizing element (exchange with
probability 1/2) to the class yields randomized shuffle-based sorters of
depth :math:`O(\\lg n \\lg\\lg n)`; hence the paper's lower bound cannot
extend to randomized complexity.

Measured mechanism: take a deterministic in-class network that sorts a
fraction ``q`` of inputs but fails *always* on an adversarially
constructed input (the E8 faulty bitonic plus the E4 certificate), and
prepend an ``R``-butterfly randomizer (depth ``lg n`` of coin-flip
exchanges).  The table reports the success probability of the
adversarial input before (identically 0) and after randomization, next
to the mean over random inputs.

Expected shape: after randomization the adversarial input's success
probability equals the population mean within sampling error -- the
worst case is gone, exactly why no randomized analogue of the
:math:`\\Omega(\\lg^2 n/\\lg\\lg n)` bound can hold.
"""

from __future__ import annotations

import numpy as np

from ..analysis.verify import random_sorting_fraction
from ..core.fooling import prove_not_sorting
from ..sorters.randomized import (
    per_input_success,
    randomize_worst_case,
    success_probability,
)
from .e8_average_case import faulty_bitonic
from .harness import Table

__all__ = ["run"]


def _randomized_cell(
    flat, net, n: int, phase: int, trials: int, population: int, seed: int
) -> dict:
    """The cacheable measurement of one (n, phase) cell.

    The adversarial input rides along in the result so a store hit can
    be revalidated: it must still fail on the freshly rebuilt
    deterministic network.
    """
    det_fraction = random_sorting_fraction(flat, 2000, np.random.default_rng(seed))
    outcome = prove_not_sorting(net, rng=np.random.default_rng(seed))
    if outcome.proved_not_sorting:
        adversarial = outcome.certificate.unsorted_input(flat)
    else:
        # the adversary missed this fault; find a failing input by
        # sampling (one exists -- the network is not a sorter)
        adversarial = None
        gen = np.random.default_rng(seed + 1)
        for _ in range(20000):
            x = gen.permutation(n)
            out = flat.evaluate(x)
            if (np.diff(out) < 0).any():
                adversarial = x
                break
        if adversarial is None:
            return {"skipped": True}
    cell_rng = np.random.default_rng([seed, n, phase])
    randomized = randomize_worst_case(flat)
    adv_prob = per_input_success(randomized, adversarial, trials, cell_rng)
    inputs = np.stack([cell_rng.permutation(n) for _ in range(population)])
    stats = success_probability(randomized, inputs, trials, cell_rng)
    return {
        "skipped": False,
        "det_fraction": det_fraction,
        "adv_input_randomized": adv_prob,
        "population_min": stats["min"],
        "population_mean": stats["mean"],
        "adversarial": [int(v) for v in adversarial],
    }


def _cell_revalidator(flat):
    """Trust a cache hit only if its adversarial input still defeats the
    deterministic network rebuilt by *this* invocation."""

    def revalidate(result: dict) -> bool:
        if result.get("skipped"):
            return True
        out = flat.evaluate(np.asarray(result["adversarial"], dtype=np.int64))
        return bool((np.diff(out) < 0).any())

    return revalidate


def run(
    exponents: tuple[int, ...] = (5, 6),
    fault_phases: tuple[int, ...] | None = None,
    trials: int = 400,
    population: int = 20,
    seed: int = 0,
    store=None,
) -> Table:
    """Randomize faulty-bitonic networks and compare worst vs mean.

    ``store`` (a :class:`repro.farm.ArtifactStore`) memoises the per-cell
    sampling work; resumed sweeps skip finished cells after re-checking
    their stored adversarial inputs.
    """
    from ..farm.store import cached

    table = Table(
        experiment="E11",
        title="Randomization erases the worst case",
        claim=(
            "with R elements, every input succeeds with ~average "
            "probability; no randomized lower bound is possible (Section 5)"
        ),
        columns=[
            "n",
            "variant",
            "det_fraction",
            "adv_input_det",
            "adv_input_randomized",
            "population_min",
            "population_mean",
            "extra_depth",
        ],
    )
    hits = 0
    cells = 0
    for e in exponents:
        n = 1 << e
        phases = fault_phases if fault_phases is not None else (1, e - 1)
        for phase in phases:
            net = faulty_bitonic(n, phase)
            flat = net.to_network()
            params = {
                "experiment": "E11",
                "cell": "randomized",
                "n": n,
                "phase": phase,
                "trials": trials,
                "population": population,
                "seed": seed,
            }
            result, hit = cached(
                store,
                params,
                lambda: _randomized_cell(
                    flat, net, n, phase, trials, population, seed
                ),
                revalidate=_cell_revalidator(flat),
            )
            cells += 1
            hits += hit
            if result.get("skipped"):
                continue
            table.add_row(
                n=n,
                variant=f"drop@phase{phase}",
                det_fraction=result["det_fraction"],
                adv_input_det=0.0,
                adv_input_randomized=result["adv_input_randomized"],
                population_min=result["population_min"],
                population_mean=result["population_mean"],
                extra_depth=e,
            )
    if store is not None:
        table.notes.append(
            f"store: {hits}/{cells} cells served from cache "
            "(adversarial inputs re-checked against rebuilt networks)"
        )
    table.notes.append(
        "adv_input_det is identically 0 by construction (the input is a "
        "verified deterministic failure); after the lg n-stage randomizer "
        "its success probability matches the population mean."
    )
    return table
