"""E10 -- sorter baselines: depth, size, correctness, throughput.

Context for the paper's introduction: the implemented sorting-network
families spanning the depth spectrum from the brick wall (``n``) through
Batcher/Pratt/balanced (:math:`\\lg^2 n`) to the AKS literature line.
Every constructed instance is verified by the 0-1 principle (small
``n``), and batch-evaluation throughput is measured -- the vectorised
substrate that makes the adversary experiments run at ``n = 2^12`` on a
laptop.
"""

from __future__ import annotations

import time

import numpy as np

from ..analysis.verify import is_sorting_network
from ..sorters.registry import SORTER_REGISTRY
from .harness import Table
from .workloads import random_permutation_batch

__all__ = ["run"]


def run(
    exponents: tuple[int, ...] = (4, 6, 8),
    verify_up_to: int = 1 << 4,
    throughput_batch: int = 256,
    seed: int = 0,
) -> Table:
    """Sweep the sorter registry."""
    table = Table(
        experiment="E10",
        title="Sorter baselines",
        claim="depth spectrum n .. lg^2 n around Batcher's upper bound",
        columns=[
            "sorter",
            "n",
            "depth",
            "size",
            "zero_one_verified",
            "batch_eval_ms",
            "keys_per_sec",
        ],
    )
    rng = np.random.default_rng(seed)
    for name, spec in SORTER_REGISTRY.items():
        for e in exponents:
            n = 1 << e
            net = spec.build(n)
            row = {
                "sorter": name,
                "n": n,
                "depth": net.depth,
                "size": net.size,
            }
            if n <= verify_up_to:
                row["zero_one_verified"] = is_sorting_network(net)
            batch = random_permutation_batch(n, throughput_batch, rng)
            start = time.perf_counter()
            net.evaluate_batch(batch)
            elapsed = time.perf_counter() - start
            row["batch_eval_ms"] = elapsed * 1e3
            row["keys_per_sec"] = throughput_batch * n / elapsed
            table.add_row(**row)
    table.notes.append(
        "zero_one_verified is exhaustive (2^n inputs) and only run for "
        "small n; larger instances are covered by randomised checks in "
        "the test suite."
    )
    return table
