"""E1 -- depth bounds: the paper's lower bound vs Batcher's upper bound.

Claim (Sections 1, 4): every shuffle-based / iterated-reverse-delta
sorting network has depth :math:`\\Omega(\\lg^2 n / \\lg\\lg n)` (with
constant 1/4, sharpenable to :math:`1/(2+\\epsilon)`), while Batcher's
bitonic sorter achieves :math:`\\lg n(\\lg n + 1)/2` -- a
:math:`\\Theta(\\lg\\lg n)` gap.  AKS sits at :math:`O(\\lg n)` with an
impractically large constant.

Expected shape: the lower-bound curve stays below Batcher everywhere and
the ratio (Batcher / lower bound) grows like :math:`2 \\lg\\lg n`; the
Paterson-constant AKS line is above Batcher for every benchmarkable
``n``.  Measured depths of the constructed networks must equal the
formulas exactly.
"""

from __future__ import annotations

from ..core import bounds
from ..sorters.aks_proxy import aks_depth_estimate
from ..sorters.bitonic import bitonic_sorting_network
from ..sorters.oddeven_merge import oddeven_merge_sorting_network
from .harness import Table

__all__ = ["run"]


def run(
    exponents: tuple[int, ...] = (3, 4, 5, 6, 8, 10, 12, 16, 20),
    measure_up_to: int = 1 << 10,
) -> Table:
    """Build the E1 table; constructs real networks up to ``measure_up_to``."""
    table = Table(
        experiment="E1",
        title="Depth lower bound vs upper bounds",
        claim=(
            "lower bound lg^2 n / (4 lglg n) stages for shuffle-based "
            "sorting; Batcher upper bound lg n (lg n + 1)/2; Theta(lglg n) gap"
        ),
        columns=[
            "n",
            "lower_bound",
            "lower_sharpened",
            "batcher_formula",
            "bitonic_measured",
            "oddeven_measured",
            "aks_paterson",
            "gap_batcher_over_lb",
        ],
    )
    for e in exponents:
        n = 1 << e
        lb = bounds.depth_lower_bound(n)
        row = {
            "n": n,
            "lower_bound": lb,
            "lower_sharpened": bounds.depth_lower_bound_sharpened(n),
            "batcher_formula": bounds.batcher_depth(n),
            "aks_paterson": aks_depth_estimate(n),
            "gap_batcher_over_lb": bounds.batcher_depth(n) / lb,
        }
        if n <= measure_up_to:
            row["bitonic_measured"] = bitonic_sorting_network(n).depth
            row["oddeven_measured"] = oddeven_merge_sorting_network(n).depth
        table.add_row(**row)
    table.notes.append(
        "AKS line uses Paterson's literature constant (~6100 lg n); see "
        "repro.sorters.aks_proxy.AKS_IMPRACTICAL_NOTE."
    )
    return table
