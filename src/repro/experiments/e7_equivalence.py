"""E7 -- structural equivalences of Section 1 / 3.2.

Claims: (a) a depth-``lg n`` shuffle-based block is a reverse delta
network and computes exactly the same function as its low-bit-split RDN
form; (b) the butterfly is both a delta and a reverse delta network
(Kruskal-Snir's uniqueness); (c) the bitonic sorter is a
``(lg n, lg n)``-iterated RDN whose strict shuffle-based program sorts.

All three are checked behaviourally (exhaustive 0-1 inputs) and
structurally (topology recognisers).  Expected shape: every cell "yes".
"""

from __future__ import annotations

import numpy as np

from ..analysis.properties import (
    is_butterfly_topology,
    is_delta_topology,
    is_reverse_delta_topology,
)
from ..analysis.verify import is_sorting_network
from ..analysis.zero_one import zero_one_inputs
from ..networks.builders import butterfly_rdn, shuffle_split_rdn
from ..sorters.bitonic import bitonic_shuffle_program
from ..networks.shuffle import shuffle_program_from_split_rdn
from .harness import Table

__all__ = ["run"]


def run(exponents: tuple[int, ...] = (2, 3, 4), seed: int = 0) -> Table:
    """Structural + behavioural equivalence checks per size."""
    table = Table(
        experiment="E7",
        title="Butterfly / shuffle-block / bitonic equivalences",
        claim=(
            "shuffle block == reverse delta network; butterfly == unique "
            "delta ∩ reverse delta; bitonic is in-class and sorts"
        ),
        columns=[
            "n",
            "butterfly_is_rdn",
            "butterfly_is_delta",
            "butterfly_unique_both",
            "shuffle_block_equiv",
            "bitonic_program_shuffle_based",
            "bitonic_program_sorts",
        ],
    )
    for e in exponents:
        n = 1 << e
        bf = butterfly_rdn(n).to_network()
        split = shuffle_split_rdn(n)
        prog = shuffle_program_from_split_rdn(split)
        batch = zero_one_inputs(n)
        equiv = bool(
            np.array_equal(
                split.to_network().evaluate_batch(batch),
                prog.to_network().evaluate_batch(batch),
            )
        )
        bprog = bitonic_shuffle_program(n)
        bnet = bprog.to_network()
        table.add_row(
            n=n,
            butterfly_is_rdn=is_reverse_delta_topology(bf),
            butterfly_is_delta=is_delta_topology(bf),
            butterfly_unique_both=is_butterfly_topology(bf),
            shuffle_block_equiv=equiv,
            bitonic_program_shuffle_based=bprog.is_shuffle_based(),
            bitonic_program_sorts=is_sorting_network(bnet),
        )
    table.notes.append(
        "shuffle_block_equiv compares the low-bit-split RDN against its "
        "register-model shuffle program on all 2^n binary inputs."
    )
    return table
