"""E6 -- permutation routing (the Section 3.2 inter-block-permutation claim).

Claim (cited by the paper [10, 9, 14]): any permutation on ``n = 2^d``
inputs is routable by a shuffle-exchange network with ``3d - 4`` levels,
so the arbitrary permutations between reverse delta blocks cost only a
constant depth factor.

Per DESIGN.md's substitution table we measure two constructive routers
bracketing the cited construction: the Beneš network (``2d - 1`` levels,
out-of-class strides) and the strict shuffle-based sort-router
(``d^2`` steps, in-class).  Expected shape: both routers verify on every
trial; Beneš depth is :math:`\\Theta(d)` like the cited bound; the
in-class router's :math:`d^2` depth shows why the cited result (not
re-derived here) matters for tightness.
"""

from __future__ import annotations

import numpy as np

from ..machines.routing import (
    benes_depth,
    benes_routing_network,
    cited_shuffle_exchange_levels,
    sort_route_program,
)
from ..networks.permutations import random_permutation
from .harness import Table

__all__ = ["run"]


def run(
    exponents: tuple[int, ...] = (2, 3, 4, 6, 8),
    trials: int = 10,
    seed: int = 0,
) -> Table:
    """Measure both routers on random permutations per size."""
    table = Table(
        experiment="E6",
        title="Permutation routing: measured routers vs the cited bound",
        claim="any permutation routable in 3 lg n - 4 shuffle-exchange levels",
        columns=[
            "n",
            "cited_3d_minus_4",
            "benes_levels",
            "benes_all_verified",
            "sort_route_steps",
            "sort_route_all_verified",
        ],
    )
    rng = np.random.default_rng(seed)
    for e in exponents:
        n = 1 << e
        benes_ok = True
        sort_ok = True
        sort_steps = 0
        for _ in range(trials):
            perm = random_permutation(n, rng)
            net = benes_routing_network(perm)
            out = net.evaluate(np.arange(n, dtype=np.int64))
            benes_ok &= all(out[perm(i)] == i for i in range(n))
            prog = sort_route_program(perm)
            sort_steps = prog.depth
            out2 = prog.to_network().evaluate(np.arange(n, dtype=np.int64))
            sort_ok &= all(out2[perm(i)] == i for i in range(n))
            sort_ok &= prog.is_shuffle_based()
        table.add_row(
            n=n,
            cited_3d_minus_4=cited_shuffle_exchange_levels(n),
            benes_levels=benes_depth(n),
            benes_all_verified=benes_ok,
            sort_route_steps=sort_steps,
            sort_route_all_verified=sort_ok,
        )
    table.notes.append(
        "the cited 3d-4 construction is a literature value (substitution "
        "documented in DESIGN.md); both measured routers are constructive "
        "and verified per trial."
    )
    return table
