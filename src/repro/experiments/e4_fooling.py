"""E4 -- Corollary 4.1.1: verified fooling pairs for shallow networks.

Claim: any ``(d, lg n)``-iterated reverse delta network with ``d`` below
the threshold is not a sorting network, and the adversary produces two
concrete inputs the network routes identically, at least one unsorted.

Expected shape: 100% verified certificates for truncated bitonic
prefixes (all ``d < lg n`` phases) and for random iterated networks
while the survivor lasts; the *full* bitonic sorter yields no
certificate; for small ``n`` the certificate/no-certificate outcome
must agree with exhaustive 0-1 verification.
"""

from __future__ import annotations

import numpy as np

from ..analysis.verify import is_sorting_network
from ..core.fooling import prove_not_sorting
from .harness import Table
from .workloads import iterated_family

__all__ = ["run"]


def run(
    exponents: tuple[int, ...] = (4, 5),
    families: tuple[str, ...] = ("bitonic", "random_iterated"),
    verify_zero_one_up_to: int = 1 << 4,
    seed: int = 0,
) -> Table:
    """Sweep block counts per family; cross-check with the 0-1 principle."""
    table = Table(
        experiment="E4",
        title="Corollary 4.1.1: fooling pairs vs ground truth",
        claim=(
            "too-shallow iterated RDNs are defeated by a verified fooling "
            "pair; a true sorter kills the adversary"
        ),
        columns=[
            "family",
            "n",
            "blocks",
            "survivor",
            "certificate",
            "cert_verified",
            "zero_one_sorts",
            "consistent",
        ],
    )
    rng = np.random.default_rng(seed)
    for name in families:
        for e in exponents:
            n = 1 << e
            for d in range(1, e + 1):
                network = iterated_family(name, n, d, rng)
                outcome = prove_not_sorting(
                    network, rng=np.random.default_rng(seed)
                )
                cert = outcome.certificate is not None
                row = {
                    "family": name,
                    "n": n,
                    "blocks": d,
                    "survivor": len(outcome.run.special_set),
                    "certificate": cert,
                    "cert_verified": cert,  # prove_not_sorting verifies
                }
                if n <= verify_zero_one_up_to:
                    sorts = is_sorting_network(network.to_network())
                    row["zero_one_sorts"] = sorts
                    # soundness: a certificate implies not sorting.
                    row["consistent"] = not (cert and sorts)
                table.add_row(**row)
    table.notes.append(
        "'consistent' checks soundness: certificate => network provably "
        "fails the 0-1 test.  The converse (no certificate => sorts) need "
        "not hold: the adversary is a lower-bound tool, not a decision "
        "procedure."
    )
    return table
