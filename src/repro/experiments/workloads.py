"""Workload and network-family generators for the experiment sweeps."""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import RegistryError
from ..networks.builders import (
    bitonic_iterated_rdn,
    butterfly_rdn,
    random_iterated_rdn,
    random_reverse_delta,
    shuffle_split_rdn,
)
from ..networks.delta import IteratedReverseDeltaNetwork, ReverseDeltaNetwork
from ..networks.gates import Op
from ..networks.permutations import random_permutation

__all__ = [
    "random_permutation_batch",
    "almost_sorted_batch",
    "BLOCK_FAMILIES",
    "block_family",
    "iterated_family",
    "seeded_family",
    "truncated_bitonic",
]


def random_permutation_batch(
    n: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` uniform random permutations of ``range(n)``, stacked."""
    return np.stack([rng.permutation(n) for _ in range(count)])


def almost_sorted_batch(
    n: int, count: int, swaps: int, rng: np.random.Generator
) -> np.ndarray:
    """Sorted vectors perturbed by ``swaps`` random transpositions each."""
    batch = np.tile(np.arange(n, dtype=np.int64), (count, 1))
    for row in batch:
        for _ in range(swaps):
            i, j = rng.integers(0, n, size=2)
            row[i], row[j] = row[j], row[i]
    return batch


def _mixed_ops_butterfly(n: int, rng: np.random.Generator) -> ReverseDeltaNetwork:
    def chooser(height: int, bit: int, low_wire: int) -> Op:
        return Op.MINUS if rng.random() < 0.5 else Op.PLUS

    return butterfly_rdn(n, chooser)


#: Named single-block families for the E2 sweep.  Each builder takes
#: ``(n, rng)`` and returns one ``lg n``-level reverse delta network.
BLOCK_FAMILIES: dict[str, Callable[[int, np.random.Generator], ReverseDeltaNetwork]] = {
    "butterfly": lambda n, rng: butterfly_rdn(n),
    "shuffle_split": lambda n, rng: shuffle_split_rdn(n),
    "butterfly_mixed_ops": _mixed_ops_butterfly,
    "random": lambda n, rng: random_reverse_delta(n, rng),
    "random_sparse": lambda n, rng: random_reverse_delta(n, rng, p_gate=0.5),
}


def block_family(name: str) -> Callable[[int, np.random.Generator], ReverseDeltaNetwork]:
    """Look up a single-block family by name."""
    try:
        return BLOCK_FAMILIES[name]
    except KeyError:
        raise RegistryError(
            f"unknown block family {name!r}; available: {', '.join(BLOCK_FAMILIES)}"
        ) from None


def iterated_family(
    name: str, n: int, blocks: int, rng: np.random.Generator
) -> IteratedReverseDeltaNetwork:
    """Build a ``blocks``-block iterated RDN of the named family.

    ``"bitonic"`` gives the (possibly truncated) bitonic sorter;
    ``"random_iterated"`` uses fresh random blocks and random inter-block
    permutations; other names repeat the single-block family with random
    inter-block permutations.
    """
    if name == "bitonic":
        return bitonic_iterated_rdn(n).truncated(blocks)
    if name == "random_iterated":
        return random_iterated_rdn(n, blocks, rng)
    build = block_family(name)
    entries = []
    for b in range(blocks):
        perm = random_permutation(n, rng) if b else None
        entries.append((perm, build(n, rng)))
    return IteratedReverseDeltaNetwork(n, entries)


def seeded_family(
    name: str, n: int, blocks: int, seed: int
) -> IteratedReverseDeltaNetwork:
    """Build an iterated family from a bare integer seed, reproducibly.

    Unlike :func:`iterated_family` this owns its generator, so two calls
    with the same arguments return identical networks regardless of what
    else consumed randomness in between -- the property the farm's
    content-addressed store relies on to rebuild a network from its job
    parameters when re-verifying a cached certificate.
    """
    return iterated_family(name, n, blocks, np.random.default_rng(seed))


def truncated_bitonic(n: int, phases: int) -> IteratedReverseDeltaNetwork:
    """The first ``phases`` phases of the bitonic sorter."""
    return bitonic_iterated_rdn(n).truncated(phases)
