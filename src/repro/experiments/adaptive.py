"""Adaptive network construction: the builder-vs-adversary duel (E9).

Section 5 notes the lower bound survives *adaptive* networks: the
labelling of level ``i`` may depend on all earlier comparison outcomes,
because the proof lets the adversary answer any labelling level by
level.  This module makes the duel concrete.  An adaptive **builder**
constructs each reverse delta block node by node *while watching the
adversary's bookkeeping* (token positions and set indices at the child
outputs), choosing the final-level pairing to hurt the adversary as much
as possible.

Builder strategies
------------------
``aligned``
    pair equal-index medium tokens (all collisions land on shift 0 --
    provably harmless: the adversary picks a different shift and loses
    nothing);
``random``
    uniform random pairing of the child outputs;
``spread``
    greedy diagonal balancing: pair tokens so collision shifts load all
    ``k^2`` diagonals as evenly as possible, forcing the adversary's
    argmin to pay about ``collisions / k^2`` per node -- the worst the
    averaging argument allows.

The co-simulation mirrors :func:`repro.core.adversary.run_lemma41`
exactly (same demotion, shift and merge rules); after building, the
caller re-runs the real ``run_lemma41`` on the finished block, and the
duel asserts both agree -- the mirror can steer construction but the
reported numbers always come from the reference implementation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.alphabet import Symbol, X
from ..core.iterate import run_adversary
from ..core.pattern import Pattern, all_medium_pattern
from ..errors import PatternError
from ..networks.delta import IteratedReverseDeltaNetwork, ReverseDeltaNetwork
from ..networks.gates import Gate, Op

__all__ = ["BUILDER_STRATEGIES", "build_adaptive_block", "DuelResult", "run_duel"]

#: A pairing strategy: given the two children's output descriptors --
#: lists of ``(position, set_index_or_None)`` -- and ``k``, return a list
#: of ``(pos0, pos1)`` pairs to place comparators on.
PairingStrategy = Callable[
    [list[tuple[int, int | None]], list[tuple[int, int | None]], int,
     np.random.Generator],
    list[tuple[int, int]],
]


def _pair_rest(
    used0: set[int], used1: set[int],
    side0: list[tuple[int, int | None]], side1: list[tuple[int, int | None]],
    pairs: list[tuple[int, int]],
) -> list[tuple[int, int]]:
    rest0 = [p for p, _ in side0 if p not in used0]
    rest1 = [p for p, _ in side1 if p not in used1]
    return pairs + list(zip(rest0, rest1))


def _strategy_aligned(side0, side1, k, rng):
    by_index1: dict[int, list[int]] = defaultdict(list)
    for p, idx in side1:
        if idx is not None:
            by_index1[idx].append(p)
    pairs: list[tuple[int, int]] = []
    used0: set[int] = set()
    used1: set[int] = set()
    for p, idx in side0:
        if idx is not None and by_index1.get(idx):
            q = by_index1[idx].pop()
            pairs.append((p, q))
            used0.add(p)
            used1.add(q)
    return _pair_rest(used0, used1, side0, side1, pairs)


def _strategy_random(side0, side1, k, rng):
    pos0 = [p for p, _ in side0]
    pos1 = [int(x) for x in rng.permutation([p for p, _ in side1])]
    return list(zip(pos0, pos1))


def _strategy_spread(side0, side1, k, rng):
    k2 = k * k
    by_index1: dict[int, list[int]] = defaultdict(list)
    for p, idx in side1:
        if idx is not None:
            by_index1[idx].append(p)
    loads = [0] * k2
    pairs: list[tuple[int, int]] = []
    used0: set[int] = set()
    used1: set[int] = set()
    tokens0 = [(p, idx) for p, idx in side0 if idx is not None]
    order = rng.permutation(len(tokens0))
    for oi in order:
        p, i = tokens0[int(oi)]
        best_s, best_load = None, None
        for s in range(k2):
            j = i - s
            if j >= 0 and by_index1.get(j):
                if best_load is None or loads[s] < best_load:
                    best_s, best_load = s, loads[s]
        if best_s is None:
            continue
        q = by_index1[i - best_s].pop()
        loads[best_s] += 1
        pairs.append((p, q))
        used0.add(p)
        used1.add(q)
    return _pair_rest(used0, used1, side0, side1, pairs)


BUILDER_STRATEGIES: dict[str, PairingStrategy] = {
    "aligned": _strategy_aligned,
    "random": _strategy_random,
    "spread": _strategy_spread,
}


def build_adaptive_block(
    pattern: Pattern,
    k: int,
    strategy: str | PairingStrategy,
    rng: np.random.Generator,
) -> ReverseDeltaNetwork:
    """Build one full reverse delta block adaptively against the adversary.

    Mirrors the Lemma 4.1 bookkeeping (argmin shifts) to expose the
    adversary's token indices to the pairing strategy at every node.  The
    wire partition is by contiguous halves; only the pairings (and hence
    the collision structure) are adaptive; every placed gate is a ``+``
    comparator (direction is irrelevant to collisions).
    """
    n = pattern.n
    pattern.validate_sml()
    pairing: PairingStrategy = (
        BUILDER_STRATEGIES[strategy] if isinstance(strategy, str) else strategy
    )
    k2 = k * k
    assign: list[Symbol] = list(pattern.symbols)
    sym: list[Symbol] = list(pattern.symbols)
    tok: dict[int, int] = {w: w for w in pattern.m_set(0)}
    fresh_x = [0]

    def recurse(lo: int, hi: int) -> ReverseDeltaNetwork:
        if hi - lo == 1:
            return ReverseDeltaNetwork.leaf(lo)
        mid = (lo + hi) // 2
        c0 = recurse(lo, mid)
        c1 = recurse(mid, hi)
        side0 = [(p, sym[p].i if p in tok else None) for p in range(lo, mid)]
        side1 = [(p, sym[p].i if p in tok else None) for p in range(mid, hi)]
        final = tuple(
            Gate(a, b, Op.PLUS) for a, b in pairing(side0, side1, k, rng)
        )
        # --- mirror of the run_lemma41 node step -------------------------
        collisions: dict[tuple[int, int], list[tuple[int, int]]] = defaultdict(list)
        for g in final:
            wa, wb = tok.get(g.a), tok.get(g.b)
            if wa is None or wb is None:
                continue
            collisions[(sym[g.a].i, sym[g.b].i)].append((wa, g.a))
        losses = [0] * k2
        for (i, j), entries in collisions.items():
            s = i - j
            if 0 <= s < k2:
                losses[s] += len(entries)
        i0 = int(np.argmin(losses))
        j0 = fresh_x[0]
        fresh_x[0] += 1
        for (i, j), entries in collisions.items():
            if i - j != i0:
                continue
            for wire, pos in entries:
                new_sym = X(i, j0)
                assign[wire] = new_sym
                sym[pos] = new_sym
                del tok[pos]
        if i0:
            for w in range(mid, hi):
                if assign[w].is_medium or assign[w].is_x:
                    assign[w] = assign[w].shifted(i0)
                s = sym[w]
                if s.is_medium or s.is_x:
                    sym[w] = s.shifted(i0)
        for g in final:
            sa, sb = sym[g.a], sym[g.b]
            if sa is sb:
                continue
            if not sa < sb:
                sym[g.a], sym[g.b] = sb, sa
                oa, ob = tok.pop(g.a, None), tok.pop(g.b, None)
                if oa is not None:
                    tok[g.b] = oa
                if ob is not None:
                    tok[g.a] = ob
        return ReverseDeltaNetwork.node(c0, c1, final)

    return recurse(0, n)


@dataclass
class DuelResult:
    """Outcome of an adaptive duel over up to ``max_blocks`` blocks."""

    n: int
    k: int
    strategy: str
    survivor_sizes: list[int] = field(default_factory=list)
    blocks_survived: int = 0
    network: IteratedReverseDeltaNetwork | None = None


def run_duel(
    n: int,
    max_blocks: int,
    strategy: str,
    *,
    k: int | None = None,
    seed: int = 0,
) -> DuelResult:
    """Alternate adaptive building and adversary play for up to ``max_blocks``.

    Each block is built against the adversary's current three-symbol
    pattern, then the reference adversary processes it; the loop stops
    when the survivor drops below two wires.  The assembled network is
    returned so the caller can re-run the whole adversary (or extract a
    fooling pair) as an end-to-end consistency check.
    """
    import math

    if k is None:
        k = max(1, round(math.log2(n)))
    rng = np.random.default_rng(seed)
    pattern = all_medium_pattern(n)
    blocks: list = []
    result = DuelResult(n=n, k=k, strategy=strategy)
    for b in range(max_blocks):
        block = build_adaptive_block(pattern, k, strategy, rng)
        blocks.append((None, block))
        one = IteratedReverseDeltaNetwork(n, [(None, block)])
        play = run_adversary(
            one, k=k, initial_pattern=pattern, rng=np.random.default_rng(seed)
        )
        survivor = len(play.special_set)
        result.survivor_sizes.append(survivor)
        if survivor < 2:
            break
        result.blocks_survived = b + 1
        if play.final_cut is None:  # pragma: no cover - defensive
            raise PatternError("adversary returned no cut state")
        pattern = Pattern(play.final_cut.symbols)
    result.network = IteratedReverseDeltaNetwork(n, blocks)
    return result
