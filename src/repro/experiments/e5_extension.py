"""E5 -- the Section 5 extension: a free permutation every ``f(n)`` stages.

Claim: allowing an arbitrary permutation after every ``f(n)`` stages
(instead of every ``lg n``) yields a lower bound of
:math:`\\Omega(\\lg n \\cdot f(n)/\\lg f(n))`, against an upper bound of
:math:`O(\\lg n \\cdot f(n))` by AKS emulation; for ``f = lg n`` it
degenerates to the main theorem.

Measured side: truncated blocks (only the first ``f`` levels populated,
arbitrary random permutations in between) are attacked by the same
adversary; the table reports how many blocks the survivor lasts --
truncated blocks collide less, so the adversary survives *more* blocks
than with full ones, which is the mechanism behind the better
(:math:`f/\\lg f` vs :math:`\\lg n/\\lg\\lg n`) block count in the bound.
"""

from __future__ import annotations

import math

import numpy as np

from ..core import bounds
from ..core.iterate import run_adversary
from ..networks.builders import random_reverse_delta, truncated_rdn
from ..networks.delta import IteratedReverseDeltaNetwork
from ..networks.permutations import random_permutation
from .harness import Table

__all__ = ["run", "truncated_block_network"]


def truncated_block_network(
    n: int, f: int, blocks: int, rng: np.random.Generator
) -> IteratedReverseDeltaNetwork:
    """``blocks`` random blocks with only their first ``f`` levels populated,
    separated by uniformly random permutations."""
    entries = []
    for b in range(blocks):
        perm = random_permutation(n, rng) if b else None
        entries.append((perm, truncated_rdn(random_reverse_delta(n, rng), f)))
    return IteratedReverseDeltaNetwork(n, entries)


def run(
    exponents: tuple[int, ...] = (6, 8),
    f_values: tuple[int, ...] | None = None,
    max_blocks: int = 48,
    seed: int = 0,
) -> Table:
    """Formula curves plus measured adversary survival for truncated blocks."""
    table = Table(
        experiment="E5",
        title="Extension: free permutation every f(n) stages",
        claim="lower bound lg n * f / (4 lg f) vs upper bound lg n * f",
        columns=[
            "n",
            "f",
            "lower_bound_depth",
            "upper_bound_depth",
            "blocks_survived",
            "stages_survived",
            "survivor_at_death",
        ],
    )
    rng = np.random.default_rng(seed)
    for e in exponents:
        n = 1 << e
        fs = f_values if f_values is not None else tuple(
            sorted({2, max(2, round(math.log2(e))), e // 2, e})
        )
        for f in fs:
            network = truncated_block_network(n, f, max_blocks, rng)
            result = run_adversary(
                network, rng=np.random.default_rng(seed), stop_when_dead=True
            )
            survived_blocks = sum(
                1 for rec in result.records if rec.chosen_size >= 2
            )
            table.add_row(
                n=n,
                f=f,
                lower_bound_depth=bounds.extension_lower_bound(n, f),
                upper_bound_depth=bounds.extension_upper_bound(n, f),
                blocks_survived=survived_blocks,
                stages_survived=survived_blocks * f,
                survivor_at_death=len(result.special_set),
            )
    table.notes.append(
        "smaller f => fewer collisions per block => more blocks survived; "
        "stages_survived is the measured analogue of the lower-bound depth."
    )
    return table
