"""Experiment drivers E1-E13 (see DESIGN.md's experiment index).

Each ``eN`` module exposes ``run(...) -> Table`` with laptop-scale
defaults; the benchmark suite wraps these with pytest-benchmark and
archives the tables.  ``run_all`` executes everything at default scale.
"""

import functools

from ..obs import events as obs_events
from ..obs.trace import get_tracer
from .harness import Table
from . import (
    adaptive,
    e1_depth_bounds,
    e2_lemma41,
    e3_theorem41,
    e4_fooling,
    e5_extension,
    e6_routing,
    e7_equivalence,
    e8_average_case,
    e9_adaptive,
    e10_sorters,
    e11_randomized,
    e12_separation,
    e13_single_permutation,
    workloads,
)

def _traced(name: str, fn):
    """Wrap a driver so each call is an ``experiment.run`` span."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with get_tracer().span(
            obs_events.SPAN_EXPERIMENT, experiment=name
        ) as span:
            table = fn(*args, **kwargs)
            span.set(rows=len(table.rows))
            return table

    return wrapper


ALL_EXPERIMENTS = {
    "E1": e1_depth_bounds.run,
    "E2": e2_lemma41.run,
    "E3": e3_theorem41.run,
    "E4": e4_fooling.run,
    "E5": e5_extension.run,
    "E6": e6_routing.run,
    "E7": e7_equivalence.run,
    "E8": e8_average_case.run,
    "E9": e9_adaptive.run,
    "E10": e10_sorters.run,
    "E11": e11_randomized.run,
    "E12": e12_separation.run,
    "E13": e13_single_permutation.run,
}
ALL_EXPERIMENTS = {name: _traced(name, fn) for name, fn in ALL_EXPERIMENTS.items()}


def run_all(save_dir: str | None = None) -> dict[str, Table]:
    """Run every experiment at default scale; optionally archive tables."""
    results: dict[str, Table] = {}
    for name, fn in ALL_EXPERIMENTS.items():
        table = fn()
        results[name] = table
        if save_dir is not None:
            table.save(save_dir)
    return results


__all__ = ["Table", "ALL_EXPERIMENTS", "run_all", "adaptive", "workloads"]
