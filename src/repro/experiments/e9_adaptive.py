"""E9 -- adaptivity does not break the bound (Section 5's first remark).

Claim: the lower bound holds even when each level's labelling is chosen
adaptively, because the adversary answers level by level.  The duel of
:mod:`repro.experiments.adaptive` instantiates the strongest adaptive
builders we could devise and plays them against the reference adversary.

Expected shape: the ``aligned`` builder (all collisions on one shift) is
harmless -- the adversary survives with no loss, like the oblivious
butterfly; the ``spread`` builder (diagonal balancing) is the worst
case, costing about ``collisions/k^2`` per node, yet the per-block
survivor still respects the Lemma 4.1 floor -- measured evidence that no
labelling strategy beats the averaging argument.
"""

from __future__ import annotations

import numpy as np

from ..core.iterate import run_adversary
from .adaptive import run_duel
from .harness import Table

__all__ = ["run"]


def run(
    exponents: tuple[int, ...] = (5, 6),
    strategies: tuple[str, ...] = ("aligned", "random", "spread"),
    max_blocks: int = 24,
    seed: int = 0,
) -> Table:
    """Duel each builder strategy against the adversary."""
    table = Table(
        experiment="E9",
        title="Adaptive builders vs the adversary",
        claim="adaptively-labelled networks obey the same lower bound",
        columns=[
            "n",
            "builder",
            "blocks_survived",
            "survivor_trajectory",
            "full_rerun_consistent",
        ],
    )
    for e in exponents:
        n = 1 << e
        for strategy in strategies:
            duel = run_duel(n, max_blocks, strategy, seed=seed)
            # End-to-end consistency: replay the reference adversary over
            # the assembled multi-block network; its per-block survivor
            # trajectory must match the incremental duel.
            assert duel.network is not None
            replay = run_adversary(
                duel.network,
                k=duel.k,
                rng=np.random.default_rng(seed),
                stop_when_dead=True,
            )
            consistent = replay.sizes()[: len(duel.survivor_sizes)] == (
                duel.survivor_sizes
            )
            table.add_row(
                n=n,
                builder=strategy,
                blocks_survived=duel.blocks_survived,
                survivor_trajectory=",".join(map(str, duel.survivor_sizes[:12])),
                full_rerun_consistent=consistent,
            )
    table.notes.append(
        "spread (diagonal balancing) is the strongest builder -- the "
        "adversary's argmin cannot dodge it; aligned also hurts, not via "
        "demotions but by fragmenting the survivor across many set "
        "indices; all trajectories stay above the theorem's guarantee."
    )
    return table
