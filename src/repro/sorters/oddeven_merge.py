"""Batcher's odd-even merge sorting network.

The second of Batcher's 1968 constructions; depth
:math:`\\lg n(\\lg n+1)/2` like the bitonic sorter but with fewer
comparators.  Unlike the bitonic sorter it is *not* obviously
shuffle-based; it serves as an out-of-class baseline with the same
asymptotic depth.
"""

from __future__ import annotations

from .._util import ilog2, require_power_of_two
from ..networks.gates import comparator
from ..networks.level import Level
from ..networks.network import ComparatorNetwork

__all__ = ["oddeven_merge_sorting_network", "oddeven_merge_size", "oddeven_merge_depth"]


def oddeven_merge_depth(n: int) -> int:
    """Comparator depth of the odd-even merge sorter."""
    d = ilog2(require_power_of_two(n, "odd-even merge size"))
    return d * (d + 1) // 2


def oddeven_merge_sorting_network(n: int) -> ComparatorNetwork:
    """Batcher's odd-even merge sorter (ascending), iterative form.

    The classic loop structure: for each block size ``p = 1, 2, 4, ...``
    and each stride ``k = p, p/2, ..., 1``, compare ``(j, j+k)`` for the
    index pairs lying in the same ``2p``-block after the initial stride.
    """
    require_power_of_two(n, "odd-even merge size")
    levels: list[Level] = []
    p = 1
    while p < n:
        k = p
        while k >= 1:
            gates = []
            for j in range(k % p, n - k, 2 * k):
                for i in range(min(k, n - j - k)):
                    if (i + j) // (2 * p) == (i + j + k) // (2 * p):
                        gates.append(comparator(i + j, i + j + k))
            levels.append(Level(gates))
            k //= 2
        p *= 2
    return ComparatorNetwork(n, levels)


def oddeven_merge_size(n: int) -> int:
    """Number of comparators in the odd-even merge sorter."""
    return oddeven_merge_sorting_network(n).size
