"""The odd-even transposition ("brick wall") sorting network.

Depth exactly ``n`` (for ``n >= 2``), size :math:`n(n-1)/2`-ish; the
simplest correct sorting network and the deep end of the baseline
spectrum.  Works for any ``n``, not only powers of two.
"""

from __future__ import annotations

from ..errors import WireError
from ..networks.gates import comparator
from ..networks.level import Level
from ..networks.network import ComparatorNetwork

__all__ = ["oddeven_transposition_network", "brick_levels"]


def brick_levels(n: int, rounds: int) -> list[Level]:
    """``rounds`` alternating even/odd adjacent-pair comparator levels."""
    levels = []
    for r in range(rounds):
        start = r % 2
        levels.append(
            Level(comparator(i, i + 1) for i in range(start, n - 1, 2))
        )
    return levels


def oddeven_transposition_network(n: int) -> ComparatorNetwork:
    """The depth-``n`` odd-even transposition sorter."""
    if n < 1:
        raise WireError(f"need at least one wire, got {n}")
    return ComparatorNetwork(n, brick_levels(n, n))
