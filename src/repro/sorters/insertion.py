"""Insertion / bubble sorting networks (Knuth 5.3.4, exercise 5).

The naive quadratic network; after parallelisation both insertion and
bubble collapse to the ``2n - 3`` depth triangle network.
"""

from __future__ import annotations

from ..errors import WireError
from ..networks.gates import comparator
from ..networks.level import Level
from ..networks.network import ComparatorNetwork

__all__ = ["insertion_network", "bubble_network"]


def insertion_network(n: int) -> ComparatorNetwork:
    """The parallelised insertion-sort network, depth ``2n - 3``.

    Level ``t`` contains gates ``(i, i+1)`` for ``i`` of the same parity
    as ``t`` within the growing triangle -- identical to the parallel
    bubble network, as Knuth observes.
    """
    if n < 1:
        raise WireError(f"need at least one wire, got {n}")
    if n == 1:
        return ComparatorNetwork(1, [])
    levels = []
    for t in range(2 * n - 3):
        gates = []
        for i in range(min(t, 2 * n - 4 - t, n - 2) + 1):
            if (t - i) % 2 == 0:
                gates.append(comparator(i, i + 1))
        levels.append(Level(gates))
    return ComparatorNetwork(n, levels)


def bubble_network(n: int) -> ComparatorNetwork:
    """Sequential bubble sort as a network: one gate per level.

    Depth :math:`n(n-1)/2`; useful as a worst-case depth baseline and for
    tests that need a sorting network with completely serial structure.
    """
    if n < 1:
        raise WireError(f"need at least one wire, got {n}")
    levels = []
    for pass_end in range(n - 1, 0, -1):
        for i in range(pass_end):
            levels.append(Level([comparator(i, i + 1)]))
    return ComparatorNetwork(n, levels)
