"""Batcher's bitonic sorting network (the paper's upper bound).

The best known upper bound for shuffle-based sorting networks is
Batcher's :math:`\\Theta(\\lg^2 n)`-depth bitonic sorter (Section 1).
This module provides the standard circuit form; the *iterated reverse
delta* form (certifying class membership) is
:func:`repro.networks.builders.bitonic_iterated_rdn`, and the strict
*shuffle-based register program* form is produced by
:func:`bitonic_shuffle_program`.
"""

from __future__ import annotations

from .._util import ilog2, require_power_of_two
from ..errors import DomainError
from ..networks.gates import Gate, Op
from ..networks.level import Level
from ..networks.network import ComparatorNetwork
from ..networks.builders import bitonic_iterated_rdn
from ..networks.registers import RegisterProgram
from ..networks.shuffle import shuffle_program_from_iterated_rdn

__all__ = [
    "bitonic_sorting_network",
    "bitonic_merge_network",
    "bitonic_shuffle_program",
    "bitonic_depth",
    "bitonic_size",
]


def bitonic_depth(n: int) -> int:
    """Comparator depth :math:`\\lg n (\\lg n + 1)/2` of the bitonic sorter."""
    d = ilog2(require_power_of_two(n, "bitonic size"))
    return d * (d + 1) // 2


def bitonic_size(n: int) -> int:
    """Comparator count :math:`n \\lg n (\\lg n + 1)/4` of the bitonic sorter."""
    return n * bitonic_depth(n) // 2


def bitonic_merge_network(n: int, phase: int | None = None) -> ComparatorNetwork:
    """One bitonic merging phase as a circuit network.

    ``phase`` is the 1-based phase index; ``None`` means the final,
    fully ascending merge (phase ``lg n``).  Phase ``p`` compares strides
    :math:`2^{p-1}, \\ldots, 1` with direction set by bit ``p`` of the
    low index.
    """
    d = ilog2(require_power_of_two(n, "bitonic size"))
    p = d if phase is None else phase
    if not 1 <= p <= d:
        raise DomainError(f"phase must be in [1, {d}], got {p}")
    levels = []
    for s in range(p - 1, -1, -1):
        stride = 1 << s
        gates = []
        for i in range(n):
            if i & stride:
                continue
            op = Op.MINUS if i & (1 << p) else Op.PLUS
            gates.append(Gate(i, i | stride, op))
        levels.append(Level(gates))
    return ComparatorNetwork(n, levels)


def bitonic_sorting_network(n: int) -> ComparatorNetwork:
    """Batcher's full bitonic sorter (ascending) in circuit form.

    Depth :math:`\\lg n(\\lg n+1)/2` comparator levels, size
    :math:`n \\lg n(\\lg n+1)/4`.
    """
    d = ilog2(require_power_of_two(n, "bitonic size"))
    net = ComparatorNetwork(n, [])
    for p in range(1, d + 1):
        net = net.then(bitonic_merge_network(n, p))
    return net


def bitonic_shuffle_program(n: int) -> RegisterProgram:
    """The bitonic sorter as a strict shuffle-based register program.

    Depth :math:`\\lg^2 n` steps, every step's permutation the shuffle --
    the canonical witness that Batcher's network lives inside the class
    the paper's lower bound addresses.
    """
    return shuffle_program_from_iterated_rdn(bitonic_iterated_rdn(n))
