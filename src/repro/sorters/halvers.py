"""ε-halvers: the approximate-splitting primitive behind AKS.

The AKS network [1] is built from *ε-halvers*: bounded-depth comparator
networks that route all but an ε fraction of the smallest half of the
values into the bottom half of the wires (and dually for the largest).
Real AKS halvers come from bounded-degree expander graphs; following the
substitution rule of DESIGN.md we build the practical equivalent --
halvers from a few rounds of **random perfect matchings** between the two
halves, which are expanders with high probability -- plus an empirical
quality measure so the approximation is quantified rather than assumed.

Definition used here (standard): a network on ``2m`` wires is an
ε-halver if for every ``k <= m``, after the network at most ``ε·k`` of
the ``k`` smallest values are in the top half, and at most ``ε·k`` of the
``k`` largest are in the bottom half.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WireError
from ..networks.gates import Gate, Op
from ..networks.level import Level
from ..networks.network import ComparatorNetwork

__all__ = ["random_matching_halver", "HalverQuality", "measure_halver_quality"]


def random_matching_halver(
    n: int, rounds: int, rng: np.random.Generator
) -> ComparatorNetwork:
    """A candidate ε-halver from ``rounds`` random cross matchings.

    Each round draws a uniform perfect matching between the bottom half
    (wires ``0 .. n/2-1``) and the top half, and places a ``+`` comparator
    on every matched pair (min to the bottom-half wire).  With ``rounds``
    = O(1/ε · lg(1/ε)) this is an ε-halver with high probability.
    """
    if n < 2 or n % 2:
        raise WireError(f"halver needs an even wire count >= 2, got {n}")
    m = n // 2
    levels = []
    for _ in range(rounds):
        match = rng.permutation(m)
        levels.append(
            Level(Gate(i, m + int(match[i]), Op.PLUS) for i in range(m))
        )
    return ComparatorNetwork(n, levels)


@dataclass(frozen=True)
class HalverQuality:
    """Empirical halver quality over a set of trial inputs.

    ``epsilon`` is the worst observed ratio (strays among the ``k``
    extreme values) / ``k``, maximised over both tails, all ``k`` and all
    trials; an exact ε-halver would satisfy ``epsilon <= ε``.
    """

    n: int
    trials: int
    epsilon: float
    worst_k: int

    def __str__(self) -> str:
        return (
            f"HalverQuality(n={self.n}, trials={self.trials}, "
            f"epsilon={self.epsilon:.4f} at k={self.worst_k})"
        )


def measure_halver_quality(
    net: ComparatorNetwork, trials: int, rng: np.random.Generator
) -> HalverQuality:
    """Measure the empirical ε of a candidate halver on random inputs.

    For each trial permutation, evaluates the network and computes, for
    every ``k``, how many of the ``k`` smallest values ended in the top
    half and how many of the ``k`` largest ended in the bottom half.
    Vectorised over trials.
    """
    n = net.n
    m = n // 2
    batch = np.stack([rng.permutation(n) for _ in range(trials)])
    out = net.evaluate_batch(batch)
    top = out[:, m:]  # values that ended in the top half
    bottom = out[:, :m]
    worst = 0.0
    worst_k = 1
    ks = np.arange(1, m + 1, dtype=np.float64)
    # smallest k values are 0..k-1; count how many sit in the top half.
    small_in_top = np.stack(
        [(top < k).sum(axis=1) for k in range(1, m + 1)], axis=1
    )  # (trials, m)
    large_in_bottom = np.stack(
        [(bottom >= n - k).sum(axis=1) for k in range(1, m + 1)], axis=1
    )
    strays = np.maximum(small_in_top, large_in_bottom).max(axis=0)  # per k
    ratios = strays / ks
    idx = int(np.argmax(ratios))
    worst = float(ratios[idx])
    worst_k = idx + 1
    return HalverQuality(n=n, trials=trials, epsilon=worst, worst_k=worst_k)
