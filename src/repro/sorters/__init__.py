"""Classical sorting networks: upper bounds and baselines.

Batcher's bitonic sorter is the paper's upper bound for the shuffle-based
class; the others contextualise it (same depth out of class, deeper
in-class Shellsort constructions, the periodic balanced network, and the
ε-halver machinery standing in for AKS per DESIGN.md).
"""

from .balanced import balanced_block_levels, balanced_sorting_network
from .bitonic import (
    bitonic_depth,
    bitonic_merge_network,
    bitonic_shuffle_program,
    bitonic_size,
    bitonic_sorting_network,
)
from .halvers import HalverQuality, measure_halver_quality, random_matching_halver
from .aks_proxy import (
    AKS_IMPRACTICAL_NOTE,
    PATERSON_DEPTH_CONSTANT,
    aks_depth_estimate,
    halver_tree_network,
    measure_displacement,
)
from .insertion import bubble_network, insertion_network
from .merge_exchange import merge_exchange_depth, merge_exchange_network
from .oddeven_merge import (
    oddeven_merge_depth,
    oddeven_merge_size,
    oddeven_merge_sorting_network,
)
from .oddeven_transposition import brick_levels, oddeven_transposition_network
from .randomized import (
    RandomizedNetwork,
    RandomizedStage,
    per_input_success,
    r_butterfly,
    randomize_worst_case,
    success_probability,
)
from .registry import SORTER_REGISTRY, SorterSpec, get_sorter, sorter_names
from .shellsort import (
    h_brick_levels,
    pratt_increments,
    pratt_network,
    shell_increments,
    shellsort_network,
)

__all__ = [
    "bitonic_sorting_network",
    "bitonic_merge_network",
    "bitonic_shuffle_program",
    "bitonic_depth",
    "bitonic_size",
    "oddeven_merge_sorting_network",
    "merge_exchange_network",
    "merge_exchange_depth",
    "oddeven_merge_depth",
    "oddeven_merge_size",
    "oddeven_transposition_network",
    "brick_levels",
    "insertion_network",
    "bubble_network",
    "balanced_sorting_network",
    "balanced_block_levels",
    "shellsort_network",
    "pratt_network",
    "shell_increments",
    "pratt_increments",
    "h_brick_levels",
    "random_matching_halver",
    "measure_halver_quality",
    "HalverQuality",
    "halver_tree_network",
    "measure_displacement",
    "aks_depth_estimate",
    "PATERSON_DEPTH_CONSTANT",
    "AKS_IMPRACTICAL_NOTE",
    "RandomizedNetwork",
    "RandomizedStage",
    "r_butterfly",
    "randomize_worst_case",
    "per_input_success",
    "success_probability",
    "SorterSpec",
    "SORTER_REGISTRY",
    "get_sorter",
    "sorter_names",
]
