"""An AKS proxy: halver-tree approximate sorter + published depth figures.

The paper repeatedly contrasts its class against the AKS network [1]:
the only known :math:`O(\\lg n)`-depth sorting network, "highly
irregular" with an "impractically large" constant [1, 11].  Building real
AKS is out of scope for any practical artifact (the paper itself treats
it as a purely theoretical comparator); per DESIGN.md's substitution
table we provide:

* :func:`halver_tree_network` -- the recursive skeleton of AKS's first
  phase: apply an ε-halver to the whole array, recurse on both halves.
  With *perfect* halvers this sorts; with random-matching halvers it
  approximately sorts, and :func:`measure_displacement` quantifies how
  approximately.  This exercises the same code paths (class membership
  checks, depth accounting, emulation cost) that real AKS would.
* :data:`PATERSON_DEPTH_CONSTANT` -- Paterson's improved depth constant
  (about ``6100 · lg n`` [11]), used by the E1 benchmark as the honest
  "where AKS would sit" line.  The original AKS constant is larger by
  orders of magnitude; we expose both figures as data, clearly labelled
  as literature values rather than measurements.
"""

from __future__ import annotations

import numpy as np

from .._util import ilog2, require_power_of_two
from ..errors import WireError
from ..networks.level import Level
from ..networks.network import ComparatorNetwork
from .halvers import random_matching_halver

__all__ = [
    "PATERSON_DEPTH_CONSTANT",
    "AKS_IMPRACTICAL_NOTE",
    "aks_depth_estimate",
    "halver_tree_network",
    "measure_displacement",
]

#: Approximate depth multiplier of Paterson's simplified AKS variant [11]:
#: depth ~ ``PATERSON_DEPTH_CONSTANT * lg n``.  A literature value.
PATERSON_DEPTH_CONSTANT = 6100.0

AKS_IMPRACTICAL_NOTE = (
    "AKS/Paterson depth constants are literature values; with c ~ 6100 the "
    "O(lg n) network only beats Batcher's (lg n)(lg n + 1)/2 depth for "
    "lg n > ~12200, i.e. n > 2^12200 -- the practical irrelevance the "
    "paper's introduction points out."
)


def aks_depth_estimate(n: int, constant: float = PATERSON_DEPTH_CONSTANT) -> float:
    """Literature-based depth estimate ``constant * lg n`` for AKS-type nets."""
    if n < 2:
        raise WireError(f"need n >= 2, got {n}")
    import math

    return constant * math.log2(n)


def halver_tree_network(
    n: int, rounds_per_halver: int, rng: np.random.Generator
) -> ComparatorNetwork:
    """The AKS first-phase skeleton: halve, then recurse on both halves.

    Depth ``rounds_per_halver * lg n``; with ideal halvers this would
    sort, with random-matching halvers it produces a low-displacement
    near-sort (measure it with :func:`measure_displacement`).  Subarrays
    at the same recursion depth are independent, so their halver levels
    are merged into common stages.
    """
    d = ilog2(require_power_of_two(n, "halver tree size"))
    all_levels: list[Level] = []
    # recursion level r: subarrays of size n >> r, each gets a halver.
    for r in range(d):
        size = n >> r
        if size < 2:
            break
        # Build one halver per subarray; merge round t of every subarray
        # into a single global level.
        subnets = []
        for base in range(0, n, size):
            subnets.append((base, random_matching_halver(size, rounds_per_halver, rng)))
        for t in range(rounds_per_halver):
            gates = []
            for base, sub in subnets:
                for g in sub.stages[t].level:
                    gates.append(type(g)(g.a + base, g.b + base, g.op))
            all_levels.append(Level(gates))
    return ComparatorNetwork(n, all_levels)


def measure_displacement(
    net: ComparatorNetwork, trials: int, rng: np.random.Generator
) -> dict[str, float]:
    """How close to sorted the network's outputs are, on random inputs.

    Returns the mean and max displacement ``|position - value|`` over all
    outputs and trials, plus the fraction of exactly-sorted outputs.  A
    sorting network scores ``(0.0, 0.0, 1.0)``.
    """
    n = net.n
    batch = np.stack([rng.permutation(n) for _ in range(trials)])
    out = net.evaluate_batch(batch)
    disp = np.abs(out - np.arange(n))
    sorted_frac = float((disp.max(axis=1) == 0).mean())
    return {
        "mean_displacement": float(disp.mean()),
        "max_displacement": float(disp.max()),
        "sorted_fraction": sorted_frac,
    }
