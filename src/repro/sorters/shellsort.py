"""Shellsort-based sorting networks (the class of Cypher's lower bound).

The paper cites Cypher's :math:`\\Omega(\\lg^2 n/\\lg\\lg n)` lower bound
for sorting networks based on Shellsort with monotonically decreasing
increments [3] -- the same bound, for a different restricted class.  For
context and comparison we implement two members of that class:

* :func:`shellsort_network` -- a conservative construction that fully
  sorts every ``h``-chain with an odd-even transposition brick per
  increment (always correct, depth :math:`\\sum_h \\lceil n/h \\rceil`);
* :func:`pratt_network` -- Pratt's 2,3-smooth increment network, in
  which each increment needs only a bounded number of compare rounds,
  giving :math:`\\Theta(\\lg^2 n)` depth.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import WireError
from ..networks.gates import comparator
from ..networks.level import Level
from ..networks.network import ComparatorNetwork

__all__ = [
    "shell_increments",
    "pratt_increments",
    "h_brick_levels",
    "shellsort_network",
    "pratt_network",
]


def shell_increments(n: int) -> list[int]:
    """Shell's original halving increments ``n//2, n//4, ..., 1``."""
    out = []
    h = n // 2
    while h >= 1:
        out.append(h)
        h //= 2
    return out or [1]


def pratt_increments(n: int) -> list[int]:
    """Pratt's 2,3-smooth increments below ``n``, decreasing."""
    incs = set()
    p = 1
    while p < n:
        q = p
        while q < n:
            incs.add(q)
            q *= 3
        p *= 2
    return sorted(incs, reverse=True)


def h_brick_levels(n: int, h: int, rounds: int) -> list[Level]:
    """``rounds`` alternating levels of stride-``h`` adjacent comparisons.

    Round ``r`` compares ``(i, i+h)`` for every ``i`` whose position
    within its ``h``-chain has parity ``r % 2`` -- an odd-even
    transposition operating on all ``h``-chains in parallel.
    """
    if h < 1:
        raise WireError(f"increment must be positive, got {h}")
    levels = []
    for r in range(rounds):
        gates = []
        for i in range(n - h):
            if (i // h) % 2 == r % 2:
                gates.append(comparator(i, i + h))
        levels.append(Level(gates))
    return levels


def shellsort_network(
    n: int, increments: Sequence[int] | None = None
) -> ComparatorNetwork:
    """A always-correct Shellsort network.

    For each increment ``h`` (monotonically decreasing, last must be 1),
    run a full odd-even transposition brick on the ``h``-chains, i.e.
    ``ceil(n / h)`` rounds -- enough to completely ``h``-sort regardless
    of the input.  With the default halving increments the total depth is
    :math:`\\Theta(n)` (dominated by ``h = 1``); the point of the
    construction is correctness and class membership, not depth.
    """
    if n < 1:
        raise WireError(f"need at least one wire, got {n}")
    incs = list(increments) if increments is not None else shell_increments(n)
    if incs and incs[-1] != 1:
        raise WireError("increment sequence must end in 1 to sort")
    if any(a <= b for a, b in zip(incs, incs[1:])):
        raise WireError("increments must be strictly decreasing (Cypher's class)")
    levels: list[Level] = []
    for h in incs:
        chain_len = math.ceil(n / h)
        levels.extend(h_brick_levels(n, h, chain_len))
    return ComparatorNetwork(n, levels)


def pratt_network(n: int, rounds_per_increment: int = 2) -> ComparatorNetwork:
    """Pratt's :math:`\\Theta(\\lg^2 n)`-depth Shellsort network.

    Uses the 2,3-smooth increments; Pratt's theorem says that once an
    array is ``2h``- and ``3h``-sorted, ``h``-sorting moves every element
    at most one ``h``-position, so a constant number of stride-``h``
    compare rounds per increment suffices.  ``rounds_per_increment = 2``
    (one even, one odd round) is the textbook setting; correctness is
    exercised exhaustively in the test suite via the 0-1 principle.
    """
    if n < 1:
        raise WireError(f"need at least one wire, got {n}")
    levels: list[Level] = []
    for h in pratt_increments(n):
        levels.extend(h_brick_levels(n, h, rounds_per_increment))
    return ComparatorNetwork(n, levels)
