"""A registry of all implemented sorting networks, for sweeps and tools.

Benchmarks and examples iterate this registry so that adding a sorter
here automatically includes it in E10 (the baseline comparison table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import RegistryError
from ..networks.network import ComparatorNetwork
from .balanced import balanced_sorting_network
from .bitonic import bitonic_sorting_network
from .insertion import insertion_network
from .merge_exchange import merge_exchange_network
from .oddeven_merge import oddeven_merge_sorting_network
from .oddeven_transposition import oddeven_transposition_network
from .shellsort import pratt_network, shellsort_network

__all__ = ["SorterSpec", "SORTER_REGISTRY", "get_sorter", "sorter_names"]


@dataclass(frozen=True)
class SorterSpec:
    """Metadata + builder for one sorting-network family."""

    name: str
    build: Callable[[int], ComparatorNetwork]
    depth_formula: str
    power_of_two_only: bool
    shuffle_based: bool
    notes: str = ""


SORTER_REGISTRY: dict[str, SorterSpec] = {
    spec.name: spec
    for spec in [
        SorterSpec(
            name="bitonic",
            build=bitonic_sorting_network,
            depth_formula="lg n (lg n + 1) / 2",
            power_of_two_only=True,
            shuffle_based=True,
            notes="Batcher 1968; the paper's upper bound; strict shuffle-based form available.",
        ),
        SorterSpec(
            name="oddeven_merge",
            build=oddeven_merge_sorting_network,
            depth_formula="lg n (lg n + 1) / 2",
            power_of_two_only=True,
            shuffle_based=False,
            notes="Batcher 1968; fewer comparators than bitonic.",
        ),
        SorterSpec(
            name="merge_exchange",
            build=merge_exchange_network,
            depth_formula="ceil(lg n)(ceil(lg n)+1)/2",
            power_of_two_only=False,
            shuffle_based=False,
            notes="Batcher via Knuth Algorithm 5.2.2M; arbitrary n.",
        ),
        SorterSpec(
            name="balanced",
            build=balanced_sorting_network,
            depth_formula="lg^2 n",
            power_of_two_only=True,
            shuffle_based=False,
            notes="Dowd-Perl-Rudolph-Saks periodic network.",
        ),
        SorterSpec(
            name="pratt",
            build=pratt_network,
            depth_formula="~2 * (#2,3-smooth increments) = Theta(lg^2 n)",
            power_of_two_only=False,
            shuffle_based=False,
            notes="Shellsort network with Pratt increments (Cypher's class).",
        ),
        SorterSpec(
            name="shellsort",
            build=shellsort_network,
            depth_formula="sum_h ceil(n/h) = Theta(n)",
            power_of_two_only=False,
            shuffle_based=False,
            notes="Conservative Shellsort network (always correct).",
        ),
        SorterSpec(
            name="oddeven_transposition",
            build=oddeven_transposition_network,
            depth_formula="n",
            power_of_two_only=False,
            shuffle_based=False,
            notes="Brick-wall network.",
        ),
        SorterSpec(
            name="insertion",
            build=insertion_network,
            depth_formula="2n - 3",
            power_of_two_only=False,
            shuffle_based=False,
            notes="Parallelised insertion sort triangle.",
        ),
    ]
}


def get_sorter(name: str) -> SorterSpec:
    """Look up a sorter by name, with a helpful error."""
    try:
        return SORTER_REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"unknown sorter {name!r}; available: {', '.join(SORTER_REGISTRY)}"
        ) from None


def sorter_names() -> list[str]:
    """All registered sorter names."""
    return list(SORTER_REGISTRY)
