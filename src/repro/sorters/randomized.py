"""Randomized comparator networks (Section 5's "randomizing" element).

To build randomized shuffle-based sorters, Leighton and Plaxton [8] add a
circuit element that *exchanges its inputs with probability 1/2* and
passes them through otherwise.  Section 5 uses this to place an
:math:`O(\\lg n \\lg\\lg n)`-depth randomized sorter inside the
shuffle-based class -- which is why the paper's lower bound cannot
extend to randomized complexity.

This module provides the element and the conversion mechanism behind
that argument:

* :class:`RandomizedNetwork` -- a comparator network whose stages may
  contain ``R`` pairs; evaluation draws one coin per ``R`` element, and
  :meth:`RandomizedNetwork.sample_network` freezes the coins into an
  ordinary :class:`~repro.networks.network.ComparatorNetwork` (so every
  deterministic analysis tool applies to samples);
* :func:`r_butterfly` -- a butterfly wired entirely with ``R`` elements:
  a ``lg n``-stage *randomizer* that scrambles any fixed input;
* :func:`randomize_worst_case` -- prepend a randomizer to a
  deterministic usually-sorts network.  The deterministic network fails
  *always* on its bad inputs; after randomization **every** input
  succeeds with probability close to the average -- the
  worst-case-to-randomized conversion Section 5 rests on, measurable
  with :func:`success_probability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from .._util import ilog2, require_power_of_two
from ..errors import LevelConflictError, WireError
from ..networks.gates import exchange
from ..networks.level import Level
from ..networks.network import ComparatorNetwork, Stage

__all__ = [
    "RandomizedStage",
    "RandomizedNetwork",
    "r_butterfly",
    "randomize_worst_case",
    "success_probability",
    "per_input_success",
]


@dataclass(frozen=True)
class RandomizedStage:
    """One stage: a deterministic level plus disjoint ``R`` pairs."""

    level: Level
    r_pairs: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        used = set(self.level.touched_wires)
        for a, b in self.r_pairs:
            if a == b:
                raise WireError(f"R element endpoints must differ: ({a}, {b})")
            for w in (a, b):
                if w in used:
                    raise LevelConflictError(
                        f"wire {w} used by two elements in one stage"
                    )
                used.add(w)

    @property
    def r_count(self) -> int:
        """Number of R elements in this stage."""
        return len(self.r_pairs)


class RandomizedNetwork:
    """A comparator network with probabilistic exchange elements.

    Each ``R`` pair independently exchanges its two values with
    probability 1/2 at every evaluation.
    """

    def __init__(self, n: int, stages: Iterable[RandomizedStage]):
        stages = tuple(stages)
        for s in stages:
            s.level.validate(n)
            for a, b in s.r_pairs:
                if not (0 <= a < n and 0 <= b < n):
                    raise WireError(f"R pair ({a}, {b}) out of range [0, {n})")
        self._n = n
        self._stages = stages

    @property
    def n(self) -> int:
        """Number of wires."""
        return self._n

    @property
    def stages(self) -> tuple[RandomizedStage, ...]:
        """The stages in execution order."""
        return self._stages

    @property
    def depth(self) -> int:
        """Number of stages."""
        return len(self._stages)

    @cached_property
    def r_count(self) -> int:
        """Total number of coin flips per evaluation."""
        return sum(s.r_count for s in self._stages)

    @cached_property
    def size(self) -> int:
        """Deterministic comparator count."""
        return sum(s.level.comparator_count for s in self._stages)

    def sample_network(self, rng: np.random.Generator) -> ComparatorNetwork:
        """Freeze every coin, returning an ordinary network."""
        out = []
        for s in self._stages:
            gates = list(s.level.gates)
            for a, b in s.r_pairs:
                if rng.random() < 0.5:
                    gates.append(exchange(a, b))
            out.append(Level(gates))
        return ComparatorNetwork(self._n, out)

    def evaluate(
        self, values: Sequence[int] | np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One evaluation with fresh coins."""
        return self.sample_network(rng).evaluate(values)

    def evaluate_batch(
        self, batch: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Evaluate a batch, with *independent* coins per row.

        Vectorised: per stage, the deterministic level is applied to the
        whole batch, then each ``R`` pair swaps on a per-row coin mask.
        """
        x = np.array(batch, dtype=np.int64, copy=True)
        if x.ndim != 2 or x.shape[1] != self._n:
            raise WireError(f"batch must have shape (rows, {self._n})")
        rows = x.shape[0]
        for s in self._stages:
            s.level.apply_inplace(x)
            for a, b in s.r_pairs:
                mask = rng.random(rows) < 0.5
                tmp = x[mask, a].copy()
                x[mask, a] = x[mask, b]
                x[mask, b] = tmp
        return x


def r_butterfly(n: int) -> RandomizedNetwork:
    """A butterfly wired entirely with ``R`` elements: the randomizer.

    ``lg n`` stages; stage ``m`` (1-based) holds ``R`` pairs of stride
    :math:`2^{m-1}`.  Composing it in front of a network makes the
    effective input distribution (nearly) independent of the actual
    input -- the standard scrambling step of randomized sorting circuits.
    """
    d = ilog2(require_power_of_two(n, "randomizer size"))
    stages = []
    for m in range(d):
        stride = 1 << m
        pairs = tuple(
            (i, i + stride) for i in range(n) if not i & stride
        )
        stages.append(RandomizedStage(level=Level(), r_pairs=pairs))
    return RandomizedNetwork(n, stages)


def randomize_worst_case(
    deterministic: ComparatorNetwork,
) -> RandomizedNetwork:
    """Prepend an ``R``-butterfly randomizer to a deterministic network.

    If the deterministic network sorts a fraction ``q`` of all inputs but
    fails *always* on the rest, the randomized composite succeeds on
    **every** input with probability roughly ``q`` (exactly ``q`` if the
    randomizer were a uniform shuffler; the butterfly randomizer is a
    close, depth-``lg n`` approximation).  This is the mechanism behind
    Section 5's claim that no randomized analogue of the lower bound can
    hold.
    """
    n = deterministic.n
    head = r_butterfly(n)
    tail = [
        RandomizedStage(level=s.level if s.perm is None else _folded(s))
        for s in deterministic.stages
    ]
    return RandomizedNetwork(n, head.stages + tuple(tail))


def _folded(stage: Stage) -> Level:
    raise WireError(
        "randomize_worst_case requires a pure circuit network; call "
        ".flattened() first"
    )


def per_input_success(
    network: RandomizedNetwork,
    values: Sequence[int] | np.ndarray,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """P(coins sort this input), estimated over ``trials`` evaluations."""
    batch = np.tile(np.asarray(values, dtype=np.int64), (trials, 1))
    out = network.evaluate_batch(batch, rng)
    ok = ~(np.diff(out, axis=1) < 0).any(axis=1)
    return float(ok.mean())


def success_probability(
    network: RandomizedNetwork,
    inputs: np.ndarray,
    trials: int,
    rng: np.random.Generator,
) -> dict[str, float]:
    """Min / mean per-input success probability over a set of inputs."""
    probs = [
        per_input_success(network, row, trials, rng) for row in np.asarray(inputs)
    ]
    return {
        "min": float(min(probs)),
        "mean": float(np.mean(probs)),
        "max": float(max(probs)),
    }
