"""The periodic balanced sorting network (Dowd, Perl, Rudolph, Saks).

:math:`\\lg n` identical blocks of :math:`\\lg n` levels each: level
``j`` of a block compares every wire with its mirror image inside chunks
of size :math:`n/2^{j-1}`.  Total depth :math:`\\lg^2 n`, same asymptotics
as Batcher but with a *periodic* structure -- a useful baseline when
discussing restricted network classes (the paper's Section 6 asks about
networks built from a single repeated permutation).
"""

from __future__ import annotations

from .._util import ilog2, require_power_of_two
from ..networks.gates import comparator
from ..networks.level import Level
from ..networks.network import ComparatorNetwork

__all__ = ["balanced_block_levels", "balanced_sorting_network"]


def balanced_block_levels(n: int) -> list[Level]:
    """One balanced-merge block: ``lg n`` mirror-comparison levels."""
    d = ilog2(require_power_of_two(n, "balanced network size"))
    levels = []
    for j in range(d):
        chunk = n >> j
        gates = []
        for base in range(0, n, chunk):
            for x in range(chunk // 2):
                gates.append(comparator(base + x, base + chunk - 1 - x))
        levels.append(Level(gates))
    return levels


def balanced_sorting_network(n: int) -> ComparatorNetwork:
    """``lg n`` repetitions of the balanced block (depth ``lg^2 n``)."""
    d = ilog2(require_power_of_two(n, "balanced network size"))
    levels: list[Level] = []
    for _ in range(d):
        levels.extend(balanced_block_levels(n))
    return ComparatorNetwork(n, levels)
