"""Batcher's merge-exchange sort (Knuth, Algorithm 5.2.2M).

The third classical Batcher network: depth
:math:`\\lceil \\lg n \\rceil(\\lceil \\lg n \\rceil + 1)/2` like the
other two, but defined for *arbitrary* ``n`` directly (no power-of-two
padding).  Knuth presents it as the canonical sorting network of The Art
of Computer Programming -- the same book whose exercise 5.3.4.47 the
paper answers -- so it belongs in the baseline set.
"""

from __future__ import annotations

from ..errors import WireError
from ..networks.gates import comparator
from ..networks.level import Level
from ..networks.network import ComparatorNetwork

__all__ = ["merge_exchange_network", "merge_exchange_depth"]


def merge_exchange_depth(n: int) -> int:
    """Number of parallel steps ``t(t+1)/2`` with ``t = ceil(lg n)``."""
    if n < 1:
        raise WireError(f"need at least one wire, got {n}")
    if n == 1:
        return 0
    t = (n - 1).bit_length()
    return t * (t + 1) // 2


def merge_exchange_network(n: int) -> ComparatorNetwork:
    """Batcher's merge exchange as a comparator network.

    Follows Algorithm 5.2.2M step for step; each inner pass (one value
    of ``d``) touches every wire at most once and becomes one parallel
    level.
    """
    if n < 1:
        raise WireError(f"need at least one wire, got {n}")
    if n == 1:
        return ComparatorNetwork(1, [])
    t = (n - 1).bit_length()
    levels: list[Level] = []
    p = 1 << (t - 1)
    while p > 0:
        q = 1 << (t - 1)
        r = 0
        d = p
        while True:
            gates = [
                comparator(i, i + d)
                for i in range(n - d)
                if (i & p) == r
            ]
            levels.append(Level(gates))
            if q == p:
                break
            d = q - p
            q >>= 1
            r = p
        p >>= 1
    return ComparatorNetwork(n, levels)
