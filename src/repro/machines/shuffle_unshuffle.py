"""Shuffle-unshuffle programs: the "ascend-descend" side of the separation.

The paper frames its result as separating **strict ascend** machines
(shuffle only -- the lower bound applies) from **ascend-descend**
machines (both shuffle :math:`\\pi` and unshuffle :math:`\\pi^{-1}`
allowed -- nearly-logarithmic sorting exists [8, 12], so no such bound
can hold).  This module makes the extra power of the two-permutation
class concrete:

* :func:`is_shuffle_unshuffle_based` -- membership test for register
  programs whose every step is shuffle or unshuffle;
* :func:`benes_shuffle_unshuffle_program` -- **any** permutation routed
  in exactly ``2 lg n`` shuffle/unshuffle steps.  The construction maps
  the Beneš network's levels onto machine stages:

  - after ``t+1`` *shuffles*, register ``u`` sits at
    ``rot_left(u, t+1)``, so stage ``t`` pairs indices differing in bit
    ``d-1-t`` -- strides ``n/2, ..., 2, 1``: exactly the first ``d``
    Beneš levels;
  - after ``j+1`` *unshuffles* (from the home position the shuffles
    return to), register ``u`` sits at ``rot_right(u, j+1)``, so stage
    ``j`` pairs bit ``(j+1) mod d`` -- strides ``2, 4, ..., n/2``:
    exactly the remaining ``d-1`` Beneš levels, with one final gate-free
    unshuffle restoring the order.

  A strict shuffle-only machine cannot run the second half: continuing
  to shuffle repeats strides ``n/2, ..., 1`` cyclically and never
  produces the ascending-stride levels.  The best in-class router we
  implement is the ``lg^2 n``-step sort-router
  (:func:`repro.machines.routing.sort_route_program`) -- experiment E12
  prints the two side by side.
"""

from __future__ import annotations

from typing import Sequence

from .._util import ilog2, require_power_of_two, rotate_left, rotate_right
from ..errors import RoutingError
from ..networks.gates import Op
from ..networks.permutations import (
    Permutation,
    shuffle_permutation,
    unshuffle_permutation,
)
from ..networks.registers import RegisterProgram, RegisterStep
from .routing import benes_routing_network

__all__ = [
    "is_shuffle_unshuffle_based",
    "benes_shuffle_unshuffle_program",
    "shuffle_unshuffle_route_depth",
]


def is_shuffle_unshuffle_based(program: RegisterProgram) -> bool:
    """True iff every step's permutation is the shuffle or the unshuffle."""
    n = program.n
    if n == 1:
        return True
    shuffle = shuffle_permutation(n)
    unshuffle = unshuffle_permutation(n)
    return all(s.perm in (shuffle, unshuffle) for s in program.steps)


def shuffle_unshuffle_route_depth(n: int) -> int:
    """Steps used by :func:`benes_shuffle_unshuffle_program`: ``2 lg n``."""
    return 2 * ilog2(require_power_of_two(n, "routing size"))


def benes_shuffle_unshuffle_program(
    perm: Permutation | Sequence[int],
) -> RegisterProgram:
    """Route any permutation in ``2 lg n`` shuffle/unshuffle steps.

    Computes Beneš switch settings with the looping algorithm, then
    transplants each Beneš level's ``1`` elements onto the machine stage
    whose adjacent pairs realise exactly that level's stride (see module
    docstring for the stage/level correspondence).  The returned program
    consists of ``lg n`` shuffle steps followed by ``lg n`` unshuffle
    steps (the last one gate-free), and moves the value at register ``i``
    to register ``perm(i)``.
    """
    mapping = (
        list(map(int, perm.mapping)) if isinstance(perm, Permutation) else list(perm)
    )
    n = len(mapping)
    d = ilog2(require_power_of_two(n, "routing size"))
    if sorted(mapping) != list(range(n)):
        raise RoutingError("targets must form a permutation of range(n)")
    if d == 0:
        return RegisterProgram(1, [])

    benes = benes_routing_network(mapping)
    level_gates = [stage.level.gates for stage in benes.stages]  # 2d-1 levels
    shuffle = shuffle_permutation(n)
    unshuffle = unshuffle_permutation(n)

    steps: list[RegisterStep] = []
    # first half: d shuffle stages realise Benes levels 0..d-1
    for t in range(d):
        ops = [Op.NOP] * (n // 2)
        for g in level_gates[t]:
            w = min(g.a, g.b)  # the endpoint with the paired bit clear
            q = rotate_left(w, d, t + 1)
            if q & 1:  # pragma: no cover - correspondence invariant
                raise RoutingError("shuffle-stage pair landed odd-aligned")
            ops[q // 2] = Op.SWAP
        steps.append(RegisterStep(perm=shuffle, ops=tuple(ops)))
    # second half: d-1 unshuffle stages realise Benes levels d..2d-2
    for j in range(d - 1):
        ops = [Op.NOP] * (n // 2)
        for g in level_gates[d + j]:
            w = min(g.a, g.b)
            q = rotate_right(w, d, j + 1)
            if q & 1:  # pragma: no cover - correspondence invariant
                raise RoutingError("unshuffle-stage pair landed odd-aligned")
            ops[q // 2] = Op.SWAP
        steps.append(RegisterStep(perm=unshuffle, ops=tuple(ops)))
    # one gate-free unshuffle restores the home positions
    steps.append(RegisterStep(perm=unshuffle, ops=tuple([Op.NOP] * (n // 2))))
    return RegisterProgram(n, steps)
