"""The shuffle-exchange machine substrate and its classic algorithms.

The strict ascend machine (shuffle only) the paper's lower bound speaks
about, together with the workloads its introduction cites as the reason
the class matters: parallel prefix, the FFT, and permutation routing.
"""

from .shuffle_exchange import PairOperation, ShuffleExchangeMachine
from .hypercube import (
    CubeConnectedCyclesMachine,
    DimensionOperation,
    HypercubeMachine,
)
from .ascend import fft, inverse_fft, parallel_prefix, parallel_reduce
from .shuffle_unshuffle import (
    benes_shuffle_unshuffle_program,
    is_shuffle_unshuffle_based,
    shuffle_unshuffle_route_depth,
)
from .sorting import bitonic_sort_on_ccc, bitonic_sort_on_hypercube
from .routing import (
    benes_depth,
    benes_routing_network,
    benes_switch_sides,
    cited_shuffle_exchange_levels,
    sort_route_program,
)

__all__ = [
    "ShuffleExchangeMachine",
    "HypercubeMachine",
    "CubeConnectedCyclesMachine",
    "DimensionOperation",
    "PairOperation",
    "parallel_prefix",
    "parallel_reduce",
    "fft",
    "inverse_fft",
    "benes_routing_network",
    "benes_switch_sides",
    "benes_depth",
    "sort_route_program",
    "cited_shuffle_exchange_levels",
    "benes_shuffle_unshuffle_program",
    "is_shuffle_unshuffle_based",
    "shuffle_unshuffle_route_depth",
    "bitonic_sort_on_hypercube",
    "bitonic_sort_on_ccc",
]
