"""Permutation routing: Beneš switching and in-class shuffle-based routing.

Section 3.2 of the paper uses the result that "any permutation on
``n = 2^d`` inputs can be routed by a shuffle-exchange network with
``3d - 4`` levels" [10, 9, 14] to argue that the arbitrary permutations
between reverse delta blocks cost only a constant depth factor.  Per
DESIGN.md's substitution table we do not re-derive that specific
construction; instead we provide two *constructive, verified* routers
bracketing it:

* :func:`benes_routing_network` -- the Beneš network with switch settings
  computed by the classical looping algorithm: ``2 lg n - 1`` levels of
  pure ``0``/``1`` switching elements.  This is the O(d) routing
  substrate (out of the strict shuffle-based class, since its levels use
  varying strides).
* :func:`sort_route_program` -- routing *inside* the class: a strict
  shuffle-based program of ``lg^2 n`` steps whose ``0``/``1`` settings
  are obtained by presimulating Batcher's bitonic sorter on the
  destination tags.  Deeper (``Theta(lg^2 n)`` vs the cited ``3d - 4``)
  but a genuine shuffle-only witness that routing is possible in-class.

:func:`cited_shuffle_exchange_levels` exposes the literature value
``3d - 4`` for the E6 benchmark's claimed-vs-measured table.
"""

from __future__ import annotations

from typing import Sequence


from .._util import ilog2, require_power_of_two
from ..errors import RoutingError
from ..networks.gates import Gate, Op
from ..networks.level import Level
from ..networks.network import ComparatorNetwork
from ..networks.permutations import Permutation
from ..networks.registers import RegisterProgram, RegisterStep
from ..sorters.bitonic import bitonic_shuffle_program

__all__ = [
    "benes_switch_sides",
    "benes_routing_network",
    "sort_route_program",
    "cited_shuffle_exchange_levels",
    "benes_depth",
]


def benes_depth(n: int) -> int:
    """Beneš level count ``2 lg n - 1``."""
    d = ilog2(require_power_of_two(n, "Benes size"))
    return max(2 * d - 1, 0)


def cited_shuffle_exchange_levels(n: int) -> int:
    """The literature bound ``3 lg n - 4`` cited by the paper [10, 9, 14]."""
    d = ilog2(require_power_of_two(n, "size"))
    return 3 * d - 4


def benes_switch_sides(targets: Sequence[int]) -> list[int]:
    """The looping algorithm: assign each input to a Beneš subnetwork.

    ``targets[i]`` is the output of input ``i`` (a permutation of
    ``range(m)``, ``m`` even).  Returns ``side[i] in {0, 1}`` such that

    * inputs ``i`` and ``(i + m/2) % m`` get different sides, and
    * the inputs destined for outputs ``j`` and ``(j + m/2) % m`` get
      different sides.

    These are exactly the constraints that let the two half-size
    subnetworks route the residual permutations.
    """
    m = len(targets)
    if m % 2:
        raise RoutingError(f"Benes layer needs an even size, got {m}")
    half = m // 2
    inv = [0] * m
    for i, t in enumerate(targets):
        inv[t] = i
    side: list[int | None] = [None] * m
    for start in range(m):
        if side[start] is not None:
            continue
        i, val = start, 0
        while side[i] is None:
            side[i] = val
            partner = (i + half) % m
            side[partner] = 1 - val
            j2 = (targets[partner] + half) % m
            i = inv[j2]
            # the input feeding output j2 must sit opposite `partner`
            val = 1 - side[partner]
        if side[i] != val:  # pragma: no cover - algorithm invariant
            raise RoutingError("looping algorithm produced an odd cycle")
    return [int(s) for s in side]  # type: ignore[arg-type]


def benes_routing_network(perm: Permutation | Sequence[int]) -> ComparatorNetwork:
    """A Beneš network, switches set to realise the given permutation.

    The returned :class:`ComparatorNetwork` contains only ``1`` (swap)
    elements (identity positions simply have no gate); evaluating it
    moves the value at input position ``i`` to output position
    ``perm(i)``.  Depth ``2 lg n - 1``.
    """
    mapping = (
        list(map(int, perm.mapping)) if isinstance(perm, Permutation) else list(perm)
    )
    n = len(mapping)
    require_power_of_two(n, "Benes size")
    d = ilog2(n)
    levels: list[list[Gate]] = [[] for _ in range(max(2 * d - 1, 0))]

    def build(base: int, targets: list[int], depth: int) -> None:
        m = len(targets)
        if m == 1:
            return
        half = m // 2
        if m == 2:
            # middle level: one switch
            if targets[0] == 1:
                levels[depth].append(Gate(base, base + 1, Op.SWAP))
            return
        side = benes_switch_sides(targets)
        sub_targets = [[0] * half, [0] * half]
        final_dest = [[0] * half, [0] * half]
        for i in range(half):
            # first-level switch on (base+i, base+i+half): put side 0 low.
            if side[i] == 1:
                levels[depth].append(Gate(base + i, base + i + half, Op.SWAP))
                w0, w1 = i + half, i
            else:
                w0, w1 = i, i + half
            d0, d1 = targets[w0], targets[w1]
            sub_targets[0][i] = d0 % half
            sub_targets[1][i] = d1 % half
            final_dest[0][d0 % half] = d0
            final_dest[1][d1 % half] = d1
        build(base, sub_targets[0], depth + 1)
        build(base + half, sub_targets[1], depth + 1)
        out_depth = 2 * (d - 1) - depth  # mirror level of `depth`
        for j in range(half):
            if final_dest[0][j] != j:
                levels[out_depth].append(Gate(base + j, base + j + half, Op.SWAP))

    build(0, mapping, 0)
    return ComparatorNetwork(n, [Level(g) for g in levels])


def sort_route_program(perm: Permutation | Sequence[int]) -> RegisterProgram:
    """Route a permutation with a strict shuffle-based switching program.

    Presimulates Batcher's bitonic sorter (in its shuffle-based form) on
    the *destination tags* and records, for every comparator, whether it
    swapped -- yielding a shuffle-based program of ``0``/``1`` elements
    that carries the value at input ``i`` to position ``perm(i)``.
    Depth ``lg^2 n`` steps, all permutations the shuffle: an in-class
    constructive routing witness.
    """
    mapping = (
        list(map(int, perm.mapping)) if isinstance(perm, Permutation) else list(perm)
    )
    n = len(mapping)
    require_power_of_two(n, "routing size")
    if sorted(mapping) != list(range(n)):
        raise RoutingError("targets must form a permutation of range(n)")
    base_program = bitonic_shuffle_program(n)
    tags = list(mapping)
    steps: list[RegisterStep] = []
    for step in base_program.steps:
        # shuffle the tags exactly as the machine would
        new_tags: list[int] = [0] * n
        for j, t in enumerate(tags):
            new_tags[step.perm(j)] = t
        tags = new_tags
        ops: list[Op] = []
        for k, op in enumerate(step.ops):
            a, b = tags[2 * k], tags[2 * k + 1]
            if op is Op.PLUS:
                swap = a > b
            elif op is Op.MINUS:
                swap = a < b
            else:
                ops.append(Op.NOP)
                continue
            if swap:
                tags[2 * k], tags[2 * k + 1] = b, a
                ops.append(Op.SWAP)
            else:
                ops.append(Op.NOP)
        steps.append(RegisterStep(perm=step.perm, ops=tuple(ops)))
    if tags != list(range(n)):  # pragma: no cover - sorter correctness
        raise RoutingError("tag presimulation failed to sort the targets")
    return RegisterProgram(n, steps)
