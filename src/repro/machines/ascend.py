"""Classic strict-ascend algorithms on the shuffle-exchange machine.

The paper motivates the shuffle-based class by the fact that hypercubic
machines "admit elegant and efficient strict ascend algorithms for a wide
variety of basic operations (e.g., parallel prefix, FFT)".  This module
implements both on the :class:`~repro.machines.shuffle_exchange.
ShuffleExchangeMachine` -- each in exactly ``lg n`` machine steps -- as
the motivating workloads of the E-series examples.

Dimension order
---------------
A shuffle-only machine visits the index bits in the fixed order
``d-1, d-2, ..., 0``.  Parallel prefix wants the opposite (LSB-first)
order; the standard remedy is to *load the data bit-reversed*, which
turns the machine's MSB-first pair structure into LSB-first over the
logical indices.  Loading order is free (it is a fixed permutation of the
input, exactly the kind of relabelling the paper's serial composition
allows), and the functions below handle it internally.

The decimation-in-frequency FFT, by contrast, consumes bits MSB-first
natively, so it runs on the machine with *no* relabelling -- the
textbook reason the (Pease-style) FFT is the shuffle-exchange algorithm.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from .._util import bit_reverse_int, ilog2, require_power_of_two
from ..errors import MachineError
from .shuffle_exchange import ShuffleExchangeMachine

__all__ = ["parallel_prefix", "parallel_reduce", "fft", "inverse_fft"]


def parallel_prefix(
    values: Sequence[Any],
    op: Callable[[Any, Any], Any] = lambda a, b: a + b,
) -> list[Any]:
    """Inclusive prefix combine (scan) in ``lg n`` machine steps.

    Runs the hypercube scan: every register carries ``(prefix, total)``;
    processing dimension ``b``, the bit-set side adds the bit-clear
    side's block total to its prefix, and both sides adopt the combined
    block total.  Dimensions must be LSB-first for prefixes to respect
    index order, so the input is loaded bit-reversed (see module notes).
    """
    values = list(values)
    n = len(values)
    require_power_of_two(n, "prefix size")
    d = ilog2(n)
    if d == 0:
        return values
    loaded = [None] * n
    for u, v in enumerate(values):
        loaded[bit_reverse_int(u, d)] = (v, v)
    machine = ShuffleExchangeMachine(loaded)

    def dim_op(bit: int, lo: Any, hi: Any) -> tuple[Any, Any]:
        # With bit-reversed loading, machine bit ``bit`` corresponds to
        # logical bit ``d - 1 - bit``; the machine visits bits d-1..0, so
        # logical bits are visited 0..d-1 -- LSB first, as required.
        (lo_prefix, lo_total), (hi_prefix, hi_total) = lo, hi
        block_total = op(lo_total, hi_total)
        return (
            (lo_prefix, block_total),
            (op(lo_total, hi_prefix), block_total),
        )

    machine.run_ascend(dim_op)
    out = [None] * n
    for p, (prefix, _total) in enumerate(machine.registers):
        out[bit_reverse_int(p, d)] = prefix
    return out


def parallel_reduce(
    values: Sequence[Any],
    op: Callable[[Any, Any], Any] = lambda a, b: a + b,
) -> Any:
    """All-reduce in ``lg n`` machine steps; every register ends with the total."""
    values = list(values)
    n = len(values)
    require_power_of_two(n, "reduce size")
    if n == 1:
        return values[0]
    machine = ShuffleExchangeMachine(values)

    def dim_op(bit: int, lo: Any, hi: Any) -> tuple[Any, Any]:
        combined = op(lo, hi)
        return combined, combined

    machine.run_ascend(dim_op)
    registers = machine.registers
    first = registers[0]
    if any(r != first for r in registers):  # pragma: no cover - sanity
        raise MachineError("reduction did not converge to a single value")
    return first


def fft(values: Sequence[complex]) -> np.ndarray:
    """The FFT as a strict ascend algorithm, in ``lg n`` machine steps.

    Runs the decimation-in-frequency Cooley-Tukey recursion: dimension
    ``b`` (visited MSB-first, the machine's native order) applies the
    butterfly

    .. math::

        (x_u, x_v) \\leftarrow (x_u + x_v,\\; (x_u - x_v)\\,\\omega^{u
        \\bmod 2^b \\cdot 2^{d-1-b}})

    to every pair of original indices ``u < v`` differing in bit ``b``.
    Each register carries ``(original_index, value)`` so the twiddle
    exponent is available locally.  DIF produces output in bit-reversed
    order; the final unscramble is a fixed output relabelling, performed
    here so the result matches ``numpy.fft.fft``.
    """
    x = np.asarray(values, dtype=np.complex128)
    n = x.shape[0]
    require_power_of_two(n, "FFT size")
    d = ilog2(n)
    if d == 0:
        return np.array(x)
    omega = np.exp(-2j * np.pi / n)
    machine = ShuffleExchangeMachine([(u, x[u]) for u in range(n)])

    def dim_op(bit: int, lo: Any, hi: Any) -> tuple[Any, Any]:
        (u, xu), (v, xv) = lo, hi
        tw = omega ** ((u % (1 << bit)) << (d - 1 - bit))
        return (u, xu + xv), (v, (xu - xv) * tw)

    machine.run_ascend(dim_op)
    out = np.empty(n, dtype=np.complex128)
    for pos, (u, val) in enumerate(machine.registers):
        assert pos == u, "registers should be home after d steps"
        out[bit_reverse_int(u, d)] = val
    return out


def inverse_fft(values: Sequence[complex]) -> np.ndarray:
    """Inverse FFT via conjugation: ``ifft(x) = conj(fft(conj(x))) / n``."""
    x = np.asarray(values, dtype=np.complex128)
    return np.conj(fft(np.conj(x))) / x.shape[0]
