"""Hypercube and cube-connected-cycles machines (the paper's §1 context).

The paper situates shuffle-based networks among the *hypercubic*
networks: "the hypercube, butterfly, cube-connected cycles, or
shuffle-exchange", and cites Cypher's result that emulating AKS on the
cube-connected cycles costs :math:`\\Omega(\\lg^2 n)` [4].  This module
provides the other two machines of that family so the repository's
ascend algorithms can be compared across substrates:

* :class:`HypercubeMachine` -- ``n = 2^d`` nodes; a *normal* (ascend or
  descend) algorithm processes one dimension per step, with every node
  exchanging with its neighbour across that dimension.  One step of the
  hypercube is one step of the shuffle-exchange (which serialises the
  same dataflow through its fixed wiring), so ascend algorithms written
  for one run unchanged on the other -- checked in the tests by running
  the *same* dimension operations on both machines.
* :class:`CubeConnectedCyclesMachine` -- each hypercube node expands
  into a cycle of ``d`` context registers, one per dimension; a normal
  algorithm runs with the classic constant-factor slowdown: each
  dimension step is one cross-edge exchange plus one cycle rotation.
  The emulation cost accounting (:meth:`steps_taken`) is what Cypher's
  :math:`\\Omega(\\lg^2 n)` lower bound for AKS emulation speaks about.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .._util import ilog2, require_power_of_two
from ..errors import MachineError

__all__ = ["DimensionOperation", "HypercubeMachine", "CubeConnectedCyclesMachine"]

#: A normal-algorithm step: ``(bit, lo, hi) -> (new_lo, new_hi)`` where
#: ``lo``/``hi`` are the values at the bit-clear / bit-set endpoints of a
#: dimension-``bit`` edge.
DimensionOperation = Callable[[int, Any, Any], tuple[Any, Any]]


class HypercubeMachine:
    """``2^d`` nodes; one dimension exchanged per step."""

    def __init__(self, values: Sequence[Any]):
        values = list(values)
        require_power_of_two(len(values), "node count")
        self._values = values
        self._d = ilog2(len(values))
        self._steps = 0

    @property
    def n(self) -> int:
        """Node count (``2**d``)."""
        return len(self._values)

    @property
    def d(self) -> int:
        """Dimension count ``lg n``."""
        return self._d

    @property
    def steps_taken(self) -> int:
        """Dimension steps executed so far."""
        return self._steps

    @property
    def values(self) -> list[Any]:
        """A copy of the per-node values, in node order."""
        return list(self._values)

    def step(self, bit: int, operation: DimensionOperation) -> None:
        """Apply one dimension-``bit`` exchange to every edge in parallel."""
        if not 0 <= bit < self._d:
            raise MachineError(f"dimension {bit} out of range [0, {self._d})")
        mask = 1 << bit
        for u in range(self.n):
            if u & mask:
                continue
            v = u | mask
            self._values[u], self._values[v] = operation(
                bit, self._values[u], self._values[v]
            )
        self._steps += 1

    def run_ascend(self, operation: DimensionOperation) -> list[Any]:
        """Dimensions ``0 .. d-1`` in order (the classic ascend schedule)."""
        for bit in range(self._d):
            self.step(bit, operation)
        return self.values

    def run_descend(self, operation: DimensionOperation) -> list[Any]:
        """Dimensions ``d-1 .. 0`` -- the shuffle-exchange's native order."""
        for bit in range(self._d - 1, -1, -1):
            self.step(bit, operation)
        return self.values


class CubeConnectedCyclesMachine:
    """The CCC: hypercube nodes expanded into ``d``-cycles of registers.

    Node ``(u, pos)`` holds a cycle position ``pos`` in ``0..d-1``; the
    cross edge at position ``pos`` connects ``(u, pos)`` to
    ``(u XOR 2^pos, pos)``.  A normal algorithm keeps each hypercube
    node's datum in its cycle and rotates it to the position of the next
    dimension between cross steps, so emulating one hypercube step costs
    one cross step plus (amortised) one rotation -- the constant-factor
    slowdown the paper's introduction alludes to, and the cost model of
    Cypher's lower bound [4].
    """

    def __init__(self, values: Sequence[Any]):
        values = list(values)
        require_power_of_two(len(values), "node count")
        self._d = ilog2(len(values))
        if self._d == 0:
            raise MachineError("CCC needs at least 2 hypercube nodes")
        # registers[u][pos]; the datum of hypercube node u starts at pos 0.
        self._registers: list[list[Any]] = [
            [values[u]] + [None] * (self._d - 1) for u in range(len(values))
        ]
        self._data_pos = 0  # common cycle position of all live data
        self._steps = 0

    @property
    def n(self) -> int:
        """Hypercube node count (total registers = n * d)."""
        return len(self._registers)

    @property
    def d(self) -> int:
        """Cycle length / hypercube dimension count."""
        return self._d

    @property
    def steps_taken(self) -> int:
        """Total machine steps (rotations + cross exchanges)."""
        return self._steps

    @property
    def data_position(self) -> int:
        """Current cycle position of the data."""
        return self._data_pos

    def values(self) -> list[Any]:
        """The datum of each hypercube node, in node order."""
        return [regs[self._data_pos] for regs in self._registers]

    def rotate(self) -> None:
        """Rotate every cycle by one position (one machine step)."""
        for regs in self._registers:
            regs.insert(0, regs.pop())
        self._data_pos = (self._data_pos + 1) % self._d
        self._steps += 1

    def cross_step(self, operation: DimensionOperation) -> None:
        """Exchange across the dimension equal to the data's position."""
        bit = self._data_pos
        mask = 1 << bit
        for u in range(self.n):
            if u & mask:
                continue
            v = u | mask
            a = self._registers[u][bit]
            b = self._registers[v][bit]
            self._registers[u][bit], self._registers[v][bit] = operation(
                bit, a, b
            )
        self._steps += 1

    def run_ascend(self, operation: DimensionOperation) -> list[Any]:
        """Emulate a hypercube ascend pass: cross, rotate, cross, ...

        Costs ``2d - 1`` machine steps per pass (d cross steps and d-1
        rotations), returning the data to dimension order at position
        ``d-1``; a final rotation (added here for convenience) restores
        position 0, for ``2d`` total -- the constant-factor emulation.
        """
        if self._data_pos != 0:
            raise MachineError("ascend pass must start at cycle position 0")
        for bit in range(self._d):
            self.cross_step(operation)
            if bit != self._d - 1:
                self.rotate()
        # restore home position so passes compose
        self.rotate()
        return self.values()
