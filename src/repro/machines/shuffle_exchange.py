"""The directed shuffle-exchange register machine (a strict ascend machine).

The paper frames its result as a separation between "ascend-descend"
machines (shuffle and unshuffle both available) and strict "ascend"
machines (shuffle only), and notes that the primary appeal of hypercubic
networks is their "elegant and efficient strict ascend algorithms for a
wide variety of basic operations (e.g., parallel prefix, FFT)".

:class:`ShuffleExchangeMachine` is that strict ascend machine: ``n = 2^d``
registers; each step shuffles all register contents and then applies a
local operation to every adjacent register pair ``(2k, 2k+1)``.  A step's
pair operation may be a comparator/exchange label (running a
shuffle-based network) or an arbitrary user function (running ascend
algorithms such as prefix sums or the FFT -- see
:mod:`repro.machines.ascend`).

Key structural fact used throughout (and proved in the tests): after
``t + 1`` shuffles the register originally at index ``u`` sits at position
``rot_left(u, t+1)``, so step ``t``'s adjacent pairs are exactly the pairs
of original indices differing in bit ``d - 1 - t``; after ``d`` steps the
registers are back in their original order.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence


from .._util import ilog2, require_power_of_two, rotate_left, rotate_right
from ..errors import MachineError
from ..networks.gates import Op
from ..networks.registers import RegisterProgram

__all__ = ["PairOperation", "ShuffleExchangeMachine"]

#: A per-pair step operation: called with ``(k, value_even, value_odd)``
#: for the pair at registers ``(2k, 2k+1)`` and returns the new pair.
PairOperation = Callable[[int, Any, Any], tuple[Any, Any]]


class ShuffleExchangeMachine:
    """``n`` registers driven by shuffle steps (strict ascend machine).

    Parameters
    ----------
    values:
        Initial register contents (any Python/NumPy values).
    """

    def __init__(self, values: Sequence[Any]):
        values = list(values)
        require_power_of_two(len(values), "register count")
        self._registers = values
        self._d = ilog2(len(values))
        self._steps_taken = 0

    # -- inspection ----------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of registers."""
        return len(self._registers)

    @property
    def d(self) -> int:
        """``lg n``."""
        return self._d

    @property
    def steps_taken(self) -> int:
        """Number of shuffle steps executed so far."""
        return self._steps_taken

    @property
    def registers(self) -> list[Any]:
        """A copy of the current register contents."""
        return list(self._registers)

    def original_index_at(self, position: int) -> int:
        """Which original register index currently sits at ``position``.

        Valid for the pure data movement (ignores that pair operations may
        have rewritten values): position ``p`` holds the rotation preimage
        ``rot_right(p, steps mod d)``.
        """
        return rotate_right(position, self._d, self._steps_taken % self._d)

    def current_pair_bit(self) -> int:
        """The original-index bit the *next* step's pairs differ in."""
        return (self._d - 1 - self._steps_taken) % self._d

    # -- stepping ------------------------------------------------------------
    def step(self, operation: PairOperation | None = None) -> None:
        """One machine step: shuffle, then apply the pair operation."""
        if self._d == 0:
            raise MachineError("a 1-register machine has no shuffle step")
        old = self._registers
        new: list[Any] = [None] * len(old)
        for j, v in enumerate(old):
            new[rotate_left(j, self._d, 1)] = v
        if operation is not None:
            for k in range(len(new) // 2):
                a, b = new[2 * k], new[2 * k + 1]
                new[2 * k], new[2 * k + 1] = operation(k, a, b)
        self._registers = new
        self._steps_taken += 1

    def step_ops(self, ops: Sequence[Op | str]) -> None:
        """One step applying register-model labels ``{+,-,0,1}`` per pair."""
        resolved = [o if isinstance(o, Op) else Op.from_str(o) for o in ops]
        if len(resolved) != self.n // 2:
            raise MachineError(
                f"need {self.n // 2} pair labels, got {len(resolved)}"
            )

        def operation(k: int, a: Any, b: Any) -> tuple[Any, Any]:
            op = resolved[k]
            if op is Op.PLUS:
                return (a, b) if a <= b else (b, a)
            if op is Op.MINUS:
                return (b, a) if a <= b else (a, b)
            if op is Op.SWAP:
                return (b, a)
            return (a, b)

        self.step(operation)

    def run_program(self, program: RegisterProgram) -> list[Any]:
        """Execute a *shuffle-based* register program; returns the registers.

        Raises :class:`MachineError` if any step's permutation is not the
        shuffle -- the machine physically cannot do anything else.
        """
        if program.n != self.n:
            raise MachineError(
                f"program is for {program.n} registers, machine has {self.n}"
            )
        if not program.is_shuffle_based():
            raise MachineError(
                "this strict ascend machine only runs shuffle-based programs"
            )
        for step in program.steps:
            self.step_ops(step.ops)
        return self.registers

    def run_ascend(
        self,
        dimension_op: Callable[[int, Any, Any], tuple[Any, Any]],
        rounds: int = 1,
    ) -> list[Any]:
        """Run a normal ascend pass: one step per dimension, ``rounds`` times.

        ``dimension_op(bit, lo, hi)`` receives the original-index bit the
        pair differs in and the values of the bit-clear (``lo``) and
        bit-set (``hi``) registers, returning their new values.  After each
        full pass of ``d`` steps the registers are back in their home
        positions, so passes compose.
        """
        for _ in range(rounds):
            for _ in range(self._d):
                bit = self.current_pair_bit()

                def operation(k: int, a: Any, b: Any) -> tuple[Any, Any]:
                    # Position 2k holds the original index with bit clear:
                    # rotating right by (t+1) maps 2k -> even target bit.
                    return dimension_op(bit, a, b)

                self.step(operation)
        return self.registers
