"""Sorting as a normal hypercubic algorithm (bitonic sort on machines).

Batcher's bitonic sort is the canonical *normal* algorithm: phase ``p``
visits dimensions ``p-1 .. 0`` with a compare-exchange whose direction
depends on bit ``p`` of the node index.  This module runs it directly on
the machine models of :mod:`repro.machines.hypercube` -- the same
dataflow that, serialised through the shuffle wiring, is the
shuffle-based network of :func:`repro.sorters.bitonic.
bitonic_shuffle_program`.  Having all three substrates execute the same
algorithm (and agree, as the tests check) is the operational content of
the paper's remark that hypercubic machines share their ascend/descend
algorithm libraries.
"""

from __future__ import annotations

from typing import Any, Sequence

from .._util import ilog2, require_power_of_two
from .hypercube import CubeConnectedCyclesMachine, HypercubeMachine

__all__ = ["bitonic_sort_on_hypercube", "bitonic_sort_on_ccc"]


def _phase_op(phase: int):
    """The dimension operation of bitonic phase ``p`` (1-based).

    Values are carried as ``(node_index, key)``; the direction of each
    compare-exchange depends on bit ``p`` of the *bit-clear* endpoint.
    """

    def op(bit: int, lo: Any, hi: Any) -> tuple[Any, Any]:
        (u, ku), (v, kv) = lo, hi
        ascending = not (u >> phase) & 1
        if (ku > kv) == ascending:
            ku, kv = kv, ku
        return (u, ku), (v, kv)

    return op


def bitonic_sort_on_hypercube(values: Sequence[Any]) -> list[Any]:
    """Sort with ``lg n (lg n + 1)/2`` hypercube steps (bitonic phases)."""
    values = list(values)
    d = ilog2(require_power_of_two(len(values), "sort size"))
    machine = HypercubeMachine([(u, v) for u, v in enumerate(values)])
    for phase in range(1, d + 1):
        op = _phase_op(phase)
        for bit in range(phase - 1, -1, -1):
            machine.step(bit, op)
    return [key for _, key in machine.values]


def bitonic_sort_on_ccc(values: Sequence[Any]) -> tuple[list[Any], int]:
    """Bitonic sort on the cube-connected cycles, with its step count.

    Each phase's dimensions are visited by rotating the cycle to the
    next dimension position between cross steps (descending order, so
    one backward rotation per dimension -- realised as ``d - 1`` forward
    rotations on a unidirectional cycle).  Returns ``(sorted_keys,
    machine_steps)``; the step count exhibits the constant-factor
    emulation overhead that Cypher's :math:`\\Omega(\\lg^2 n)` CCC bound
    [4] is stated against.
    """
    values = list(values)
    d = ilog2(require_power_of_two(len(values), "sort size"))
    ccc = CubeConnectedCyclesMachine([(u, v) for u, v in enumerate(values)])
    for phase in range(1, d + 1):
        op = _phase_op(phase)
        # rotate the data to position phase-1
        while ccc.data_position != (phase - 1) % d:
            ccc.rotate()
        for bit in range(phase - 1, -1, -1):
            while ccc.data_position != bit:
                ccc.rotate()
            ccc.cross_step(op)
    keys = [key for _, key in ccc.values()]
    return keys, ccc.steps_taken
