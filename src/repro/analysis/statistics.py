"""Sortedness statistics: inversions, displacement, runs.

Vectorised measures of "how sorted" network outputs are, used by the
average-case experiments (E8/E11) and available as a public API for
custom studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..networks.network import ComparatorNetwork

__all__ = [
    "inversion_count",
    "inversion_counts_batch",
    "displacement_stats",
    "run_count",
    "SortednessReport",
    "sortedness_report",
]


def inversion_count(values) -> int:
    """Number of inversions (pairs out of order), via merge counting."""
    arr = np.asarray(values).tolist()

    def sort_count(a: list) -> tuple[list, int]:
        if len(a) <= 1:
            return a, 0
        mid = len(a) // 2
        left, cl = sort_count(a[:mid])
        right, cr = sort_count(a[mid:])
        merged: list = []
        inv = cl + cr
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
                inv += len(left) - i
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged, inv

    return sort_count(arr)[1]


def inversion_counts_batch(batch: np.ndarray) -> np.ndarray:
    """Inversion count per row of a ``(rows, n)`` array.

    O(rows · n²) vectorised over rows via pairwise comparison masks --
    fine for the `n <= 2^10` sizes the experiments use.
    """
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ReproError(f"expected a 2-D batch, got ndim={batch.ndim}")
    n = batch.shape[1]
    total = np.zeros(batch.shape[0], dtype=np.int64)
    for i in range(n - 1):
        total += (batch[:, i][:, None] > batch[:, i + 1 :]).sum(axis=1)
    return total


def displacement_stats(batch: np.ndarray) -> dict[str, float]:
    """Mean/max |position - rank| over a batch of outputs.

    Rows must be permutations of ``range(n)``.
    """
    batch = np.asarray(batch)
    disp = np.abs(batch - np.arange(batch.shape[1]))
    return {"mean": float(disp.mean()), "max": float(disp.max())}


def run_count(values) -> int:
    """Number of maximal nondecreasing runs (1 = sorted)."""
    arr = np.asarray(values)
    if arr.shape[0] <= 1:
        return 1
    return int((np.diff(arr) < 0).sum()) + 1


@dataclass(frozen=True)
class SortednessReport:
    """Aggregate sortedness of a network's outputs on random inputs."""

    n: int
    trials: int
    sorted_fraction: float
    mean_inversions: float
    max_inversions: int
    mean_displacement: float
    mean_runs: float

    def __str__(self) -> str:
        return (
            f"SortednessReport(n={self.n}, sorted={self.sorted_fraction:.3f}, "
            f"inv={self.mean_inversions:.2f}, disp={self.mean_displacement:.2f}, "
            f"runs={self.mean_runs:.2f})"
        )


def sortedness_report(
    network: ComparatorNetwork,
    trials: int,
    rng: np.random.Generator,
) -> SortednessReport:
    """Evaluate random permutations and summarise output sortedness."""
    n = network.n
    batch = np.stack([rng.permutation(n) for _ in range(trials)])
    out = network.evaluate_batch(batch)
    inv = inversion_counts_batch(out)
    runs = (np.diff(out, axis=1) < 0).sum(axis=1) + 1
    return SortednessReport(
        n=n,
        trials=trials,
        sorted_fraction=float((inv == 0).mean()),
        mean_inversions=float(inv.mean()),
        max_inversions=int(inv.max()),
        mean_displacement=displacement_stats(out)["mean"],
        mean_runs=float(runs.mean()),
    )
