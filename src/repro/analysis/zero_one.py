"""0-1 principle utilities and the representative-set experiment.

Section 5 of the paper discusses strengthening the 0-1 principle: could a
*small* "representative" subset of the binary inputs certify that a
network is nearly a sorting network?  The paper proves no polynomial-size
representative set exists for the shuffle-based class -- as a corollary
of the depth lower bound.  The utilities here make the ingredients of
that discussion executable: enumerating/counting binary witnesses,
checking a network against a chosen subset of 0-1 inputs, and measuring
how many binary inputs distinguish "sorts the subset" from "sorts
everything".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..networks.network import ComparatorNetwork
from .verify import _zero_one_batches

__all__ = [
    "zero_one_inputs",
    "zero_one_witnesses",
    "sorts_zero_one_subset",
    "witness_count",
    "random_zero_one_subset",
]


def zero_one_inputs(n: int, max_wires: int = 24) -> np.ndarray:
    """All :math:`2^n` binary inputs as one ``(2^n, n)`` array."""
    if n > max_wires:
        raise ReproError(f"2^{n} binary inputs refused (max_wires={max_wires})")
    return np.concatenate(list(_zero_one_batches(n)), axis=0)


def zero_one_witnesses(
    network: ComparatorNetwork, max_wires: int = 20
) -> np.ndarray:
    """All binary inputs the network fails to sort (possibly empty)."""
    n = network.n
    if n > max_wires:
        raise ReproError(f"2^{n} binary inputs refused (max_wires={max_wires})")
    found = []
    for batch in _zero_one_batches(n):
        out = network.evaluate_batch(batch)
        bad = (np.diff(out, axis=1) < 0).any(axis=1)
        if bad.any():
            found.append(batch[bad])
    if not found:
        return np.empty((0, n), dtype=np.int64)
    return np.concatenate(found, axis=0)


def witness_count(network: ComparatorNetwork, max_wires: int = 20) -> int:
    """Number of binary inputs the network fails to sort."""
    return int(zero_one_witnesses(network, max_wires=max_wires).shape[0])


def sorts_zero_one_subset(
    network: ComparatorNetwork, subset: Sequence[Sequence[int]] | np.ndarray
) -> bool:
    """Does the network sort every binary input of the given subset?"""
    batch = np.asarray(subset, dtype=np.int64)
    if batch.ndim != 2 or batch.shape[1] != network.n:
        raise ReproError(
            f"subset must have shape (count, {network.n}), got {batch.shape}"
        )
    out = network.evaluate_batch(batch)
    return not bool((np.diff(out, axis=1) < 0).any())


def random_zero_one_subset(
    n: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` random binary inputs (with replacement)."""
    return rng.integers(0, 2, size=(count, n), dtype=np.int64)
