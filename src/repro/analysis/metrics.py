"""Structural metrics of comparator networks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..networks.gates import Op
from ..networks.network import ComparatorNetwork

__all__ = ["NetworkMetrics", "network_metrics", "comparators_per_level", "wire_usage"]


@dataclass(frozen=True)
class NetworkMetrics:
    """Summary statistics of one network."""

    n: int
    depth: int
    comparator_depth: int
    size: int
    exchange_elements: int
    nop_elements: int
    max_level_width: int
    mean_level_width: float
    has_permutations: bool

    def as_dict(self) -> dict[str, float | int | bool]:
        """Plain-dict view for table printers."""
        return {
            "n": self.n,
            "depth": self.depth,
            "comparator_depth": self.comparator_depth,
            "size": self.size,
            "exchange_elements": self.exchange_elements,
            "nop_elements": self.nop_elements,
            "max_level_width": self.max_level_width,
            "mean_level_width": self.mean_level_width,
            "has_permutations": self.has_permutations,
        }


def comparators_per_level(network: ComparatorNetwork) -> list[int]:
    """Comparator count of each stage, in order."""
    return [s.comparator_count for s in network.stages]


def wire_usage(network: ComparatorNetwork) -> np.ndarray:
    """How many gates (of any kind) touch each wire."""
    usage = np.zeros(network.n, dtype=np.int64)
    for stage in network.stages:
        for g in stage.level:
            usage[g.a] += 1
            usage[g.b] += 1
    return usage


def network_metrics(network: ComparatorNetwork) -> NetworkMetrics:
    """Compute all summary metrics in one pass."""
    widths = [s.comparator_count for s in network.stages]
    exchanges = nops = 0
    for stage in network.stages:
        for g in stage.level:
            if g.op is Op.SWAP:
                exchanges += 1
            elif g.op is Op.NOP:
                nops += 1
    return NetworkMetrics(
        n=network.n,
        depth=network.depth,
        comparator_depth=network.comparator_depth,
        size=network.size,
        exchange_elements=exchanges,
        nop_elements=nops,
        max_level_width=max(widths, default=0),
        mean_level_width=float(np.mean(widths)) if widths else 0.0,
        has_permutations=not network.is_pure_circuit(),
    )
