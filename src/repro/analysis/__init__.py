"""Verification and analysis: 0-1 principle, collisions, topologies, metrics."""

from .verify import (
    exhaustive_permutation_check,
    find_unsorted_zero_one_input,
    is_sorted_vector,
    is_sorting_network,
    random_sorting_fraction,
    sorts_input,
)
from .zero_one import (
    random_zero_one_subset,
    sorts_zero_one_subset,
    witness_count,
    zero_one_inputs,
    zero_one_witnesses,
)
from .collision_graph import (
    adjacent_pairs_all_compared,
    collision_graph,
    uncompared_adjacent_pairs,
    wire_collision_graph,
)
from .ground_truth import GroundTruth, exhaustive_uncompared_search
from .metrics import (
    NetworkMetrics,
    comparators_per_level,
    network_metrics,
    wire_usage,
)
from .statistics import (
    SortednessReport,
    displacement_stats,
    inversion_count,
    inversion_counts_batch,
    run_count,
    sortedness_report,
)
from .properties import (
    is_butterfly_topology,
    is_delta_topology,
    is_reverse_delta_topology,
    reconstruct_reverse_delta,
    reversed_levels_network,
)

__all__ = [
    "is_sorting_network",
    "find_unsorted_zero_one_input",
    "exhaustive_permutation_check",
    "random_sorting_fraction",
    "sorts_input",
    "is_sorted_vector",
    "zero_one_inputs",
    "zero_one_witnesses",
    "witness_count",
    "sorts_zero_one_subset",
    "random_zero_one_subset",
    "collision_graph",
    "wire_collision_graph",
    "uncompared_adjacent_pairs",
    "adjacent_pairs_all_compared",
    "GroundTruth",
    "exhaustive_uncompared_search",
    "NetworkMetrics",
    "network_metrics",
    "comparators_per_level",
    "wire_usage",
    "is_reverse_delta_topology",
    "is_delta_topology",
    "is_butterfly_topology",
    "reconstruct_reverse_delta",
    "reversed_levels_network",
    "inversion_count",
    "inversion_counts_batch",
    "displacement_stats",
    "run_count",
    "SortednessReport",
    "sortedness_report",
]
