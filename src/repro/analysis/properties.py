"""Topology recognisers: reverse delta, delta, butterfly (Section 3.2).

Definition 3.4 is existential ("there *exist* subnetworks such that...");
these functions decide it constructively for a concrete pure-circuit
network by reconstructing the recursion:

* the gates of the last level must cross a balanced bipartition of the
  wires that no earlier gate crosses;
* candidate bipartitions are found by contracting the earlier levels'
  connectivity into components, 2-colouring the constraint graph the
  final level induces on them, and balancing the colour classes with a
  subset-sum choice of colouring orientations;
* recurse into both sides.

A *delta* network is the level-reversal of a reverse delta network, and
the butterfly is the unique network that is both [Kruskal-Snir], which is
exactly how :func:`is_butterfly_topology` decides it.
"""

from __future__ import annotations


from .._util import ilog2, is_power_of_two
from ..errors import TopologyError
from ..networks.delta import ReverseDeltaNetwork
from ..networks.gates import Gate
from ..networks.network import ComparatorNetwork

__all__ = [
    "reconstruct_reverse_delta",
    "is_reverse_delta_topology",
    "reversed_levels_network",
    "is_delta_topology",
    "is_butterfly_topology",
]


class _UnionFind:
    def __init__(self, items):
        self.parent = {x: x for x in items}

    def find(self, x):
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def _balanced_orientations(
    groups: list[tuple[int, int]], target: int
):
    """Yield every per-group orientation whose side-0 sizes sum to ``target``.

    ``groups[c] = (size0, size1)``; orientation 0 contributes ``size0``
    to side 0, orientation 1 contributes ``size1``.  Subset-sum DP over
    reachable totals, then a DFS back through the table enumerating all
    solutions lazily (sparse networks can admit many balanced splits, of
    which only some are recursively valid -- the caller backtracks).
    """
    reachable_after: list[set[int]] = []
    reachable: set[int] = {0}
    for s0, s1 in groups:
        nxt = set()
        for total in reachable:
            if total + s0 <= target:
                nxt.add(total + s0)
            if total + s1 <= target:
                nxt.add(total + s1)
        reachable_after.append(nxt)
        reachable = nxt
        if not reachable:
            return
    if target not in reachable:
        return
    # reachable-before sets for the backward DFS
    before: list[set[int]] = [{0}] + reachable_after[:-1]

    def dfs(c: int, remaining: int, suffix: list[int]):
        if c < 0:
            yield list(reversed(suffix))
            return
        s0, s1 = groups[c]
        for pick, sub in ((0, s0), (1, s1)):
            prev = remaining - sub
            if prev >= 0 and prev in before[c]:
                suffix.append(pick)
                yield from dfs(c - 1, prev, suffix)
                suffix.pop()

    yield from dfs(len(groups) - 1, target, [])


def reconstruct_reverse_delta(
    network: ComparatorNetwork, max_attempts: int = 4096
) -> ReverseDeltaNetwork:
    """Reconstruct the Definition 3.4 tree of a pure-circuit network.

    Requires ``n = 2^l`` wires, exactly ``l`` stages, and no stage
    permutations.  Raises :class:`~repro.errors.TopologyError` if the
    network is not an ``l``-level reverse delta network.

    Sparse networks can admit many balanced bipartitions per level, only
    some of which work recursively; the search backtracks across them,
    bounded by ``max_attempts`` total split trials (dense networks such
    as the butterfly have essentially unique splits and never backtrack).
    """
    n = network.n
    budget = [max_attempts]
    if not network.is_pure_circuit():
        raise TopologyError("topology recognition requires a pure circuit network")
    if not is_power_of_two(n):
        raise TopologyError(f"need a power-of-two wire count, got {n}")
    log_n = ilog2(n)
    if network.depth != log_n:
        raise TopologyError(
            f"an l-level reverse delta network has exactly lg n = {log_n} levels, "
            f"got {network.depth}"
        )
    levels: list[tuple[Gate, ...]] = [s.level.gates for s in network.stages]

    def rec(wires: frozenset[int], j: int) -> ReverseDeltaNetwork:
        if j == 0:
            (w,) = wires
            return ReverseDeltaNetwork.leaf(w)
        inner_edges: list[tuple[int, int]] = []
        for lvl in range(j - 1):
            for g in levels[lvl]:
                ina, inb = g.a in wires, g.b in wires
                if ina != inb:
                    raise TopologyError(
                        f"gate {g} at level {lvl} crosses a required subnetwork "
                        "boundary",
                        level=lvl,
                        gate=g,
                    )
                if ina:
                    inner_edges.append((g.a, g.b))
        final = [g for g in levels[j - 1] if g.a in wires or g.b in wires]
        for g in final:
            if not (g.a in wires and g.b in wires):
                raise TopologyError(
                    f"final-level gate {g} crosses the subnetwork boundary",
                    level=j - 1,
                    gate=g,
                )
        uf = _UnionFind(wires)
        for a, b in inner_edges:
            uf.union(a, b)
        comp_of = {w: uf.find(w) for w in wires}
        comps = sorted(set(comp_of.values()))
        comp_index = {c: i for i, c in enumerate(comps)}
        # 2-colour the component graph induced by the final level.
        adj: list[list[int]] = [[] for _ in comps]
        for g in final:
            ca, cb = comp_index[comp_of[g.a]], comp_index[comp_of[g.b]]
            if ca == cb:
                raise TopologyError(
                    f"final-level gate {g} joins wires already connected below",
                    level=j - 1,
                    gate=g,
                )
            adj[ca].append(cb)
            adj[cb].append(ca)
        colour: list[int | None] = [None] * len(comps)
        groups: list[list[int]] = []  # meta-components (lists of comp indices)
        for start in range(len(comps)):
            if colour[start] is not None:
                continue
            colour[start] = 0
            stack = [start]
            members = [start]
            while stack:
                u = stack.pop()
                for v in adj[u]:
                    if colour[v] is None:
                        colour[v] = 1 - colour[u]  # type: ignore[operator]
                        stack.append(v)
                        members.append(v)
                    elif colour[v] == colour[u]:
                        raise TopologyError(
                            "final level induces an odd cycle; no valid split",
                            level=j - 1,
                        )
            groups.append(members)
        comp_sizes = [0] * len(comps)
        for w in wires:
            comp_sizes[comp_index[comp_of[w]]] += 1
        group_sizes = []
        for members in groups:
            s0 = sum(comp_sizes[c] for c in members if colour[c] == 0)
            s1 = sum(comp_sizes[c] for c in members if colour[c] == 1)
            group_sizes.append((s0, s1))
        # Sparse final levels can admit several balanced bipartitions, of
        # which only some are recursively valid -- backtrack over all of
        # them (bounded by the attempt budget).
        last_error: TopologyError | None = None
        tried = 0
        for orientation in _balanced_orientations(group_sizes, len(wires) // 2):
            tried += 1
            if budget[0] <= 0:
                raise TopologyError(
                    "topology recognition exceeded its backtracking budget; "
                    "increase max_attempts"
                )
            budget[0] -= 1
            side_of_comp = [0] * len(comps)
            for gi, members in enumerate(groups):
                for c in members:
                    side_of_comp[c] = colour[c] ^ orientation[gi]  # type: ignore[operator]
            w0 = frozenset(
                w for w in wires if side_of_comp[comp_index[comp_of[w]]] == 0
            )
            w1 = wires - w0
            try:
                child0 = rec(w0, j - 1)
                child1 = rec(w1, j - 1)
            except TopologyError as exc:
                last_error = exc
                continue
            oriented = [g if g.a in w0 else g.reversed() for g in final]
            return ReverseDeltaNetwork.node(child0, child1, tuple(oriented))
        if tried == 0:
            raise TopologyError(
                "no balanced bipartition exists at this level", level=j - 1
            )
        assert last_error is not None
        raise last_error

    return rec(frozenset(range(n)), log_n)


def is_reverse_delta_topology(network: ComparatorNetwork) -> bool:
    """Decide Definition 3.4 for a pure-circuit network."""
    try:
        reconstruct_reverse_delta(network)
    except TopologyError:
        return False
    return True


def reversed_levels_network(network: ComparatorNetwork) -> ComparatorNetwork:
    """The mirror image: same levels in reverse order (pure circuits only)."""
    if not network.is_pure_circuit():
        raise TopologyError("level reversal requires a pure circuit network")
    return ComparatorNetwork(
        network.n, [s.level for s in reversed(network.stages)]
    )


def is_delta_topology(network: ComparatorNetwork) -> bool:
    """A delta network is the level-reversal of a reverse delta network."""
    return is_reverse_delta_topology(reversed_levels_network(network))


def is_butterfly_topology(network: ComparatorNetwork) -> bool:
    """Kruskal-Snir: the butterfly is the unique delta ∩ reverse delta.

    Decides whether the network's wiring is (a relabelling of) the
    butterfly by checking both memberships.
    """
    return is_reverse_delta_topology(network) and is_delta_topology(network)
