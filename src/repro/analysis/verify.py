"""Sorting-network verification: 0-1 principle, exhaustive and randomised.

The 0-1 principle (cited in Section 5) reduces sorting-network
verification to the :math:`2^n` binary inputs: a comparator network sorts
every input iff it sorts every 0-1 input.  We verify with vectorised
batches of binary inputs, exhaustively over permutations for tiny ``n``,
or by random sampling as a cheap refutation pass.
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from ..errors import ReproError
from ..networks.network import ComparatorNetwork

__all__ = [
    "is_sorted_vector",
    "sorts_input",
    "find_unsorted_zero_one_input",
    "is_sorting_network",
    "random_sorting_fraction",
    "exhaustive_permutation_check",
]

_ZERO_ONE_BATCH = 1 << 14


def is_sorted_vector(values: np.ndarray) -> bool:
    """True iff the vector is nondecreasing."""
    values = np.asarray(values)
    return bool((np.diff(values) >= 0).all())


def sorts_input(network: ComparatorNetwork, values) -> bool:
    """True iff the network's output on this input is nondecreasing."""
    return is_sorted_vector(network.evaluate(values))


def _zero_one_batches(n: int) -> Iterator[np.ndarray]:
    """All 0-1 inputs of length ``n``, in vectorised batches."""
    total = 1 << n
    bit_cols = np.arange(n - 1, -1, -1, dtype=np.uint64)
    # batch stepping, not a scalar per-wire loop: each iteration emits
    # one vectorised (batch, n) block
    start = 0
    while start < total:
        stop = min(start + _ZERO_ONE_BATCH, total)
        codes = np.arange(start, stop, dtype=np.uint64)[:, None]
        yield ((codes >> bit_cols) & 1).astype(np.int64)
        start = stop


def find_unsorted_zero_one_input(
    network: ComparatorNetwork, max_wires: int = 24
) -> np.ndarray | None:
    """A 0-1 input the network fails to sort, or ``None`` if none exists.

    Exhaustive over all :math:`2^n` binary vectors (vectorised); refuses
    ``n > max_wires`` to avoid accidental multi-hour runs.
    """
    n = network.n
    if n > max_wires:
        raise ReproError(
            f"exhaustive 0-1 check over 2^{n} inputs refused (max_wires={max_wires})"
        )
    witness = None
    for batch in _zero_one_batches(n):
        out = network.evaluate_batch(batch)
        bad = np.nonzero((np.diff(out, axis=1) < 0).any(axis=1))[0]
        if bad.size:
            witness = batch[int(bad[0])]
            break
    if witness is None:
        return None
    return np.array(witness)


def is_sorting_network(network: ComparatorNetwork, max_wires: int = 24) -> bool:
    """Exact check via the 0-1 principle."""
    return find_unsorted_zero_one_input(network, max_wires=max_wires) is None


def exhaustive_permutation_check(
    network: ComparatorNetwork, max_wires: int = 8
) -> np.ndarray | None:
    """A permutation input the network fails to sort, or ``None``.

    Exhaustive over all ``n!`` permutations; independent of the 0-1
    principle, so the two checkers cross-validate each other in tests.
    """
    n = network.n
    if n > max_wires:
        raise ReproError(
            f"exhaustive check over {n}! permutations refused (max_wires={max_wires})"
        )
    batch = np.array(list(itertools.permutations(range(n))), dtype=np.int64)
    out = network.evaluate_batch(batch)
    bad = np.nonzero((np.diff(out, axis=1) < 0).any(axis=1))[0]
    if bad.size:
        return batch[int(bad[0])].copy()
    return None


def random_sorting_fraction(
    network: ComparatorNetwork,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Fraction of random permutation inputs the network sorts.

    The measurement behind the Section 5 average-case discussion: shallow
    shuffle-based networks sort *most* inputs long before they sort all.
    """
    n = network.n
    batch = np.stack([rng.permutation(n) for _ in range(trials)])
    out = network.evaluate_batch(batch)
    ok = ~(np.diff(out, axis=1) < 0).any(axis=1)
    return float(ok.mean())
