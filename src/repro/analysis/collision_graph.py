"""Collision graphs and the adjacent-pair observation of Section 2.

"A sorting network has to make a comparison between all pairs of
adjacent values in every input": if some input leaves a pair
``{m, m+1}`` uncompared, swapping them produces a second input the
network routes identically, so it cannot sort both.  This module builds
the *collision graph* of an input -- vertices are values, edges are
comparisons actually performed -- and extracts uncompared adjacent pairs,
the direct (non-pattern) form of the paper's non-sorting witness.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from ..networks.network import ComparatorNetwork

__all__ = [
    "collision_graph",
    "uncompared_adjacent_pairs",
    "adjacent_pairs_all_compared",
    "wire_collision_graph",
]


def collision_graph(
    network: ComparatorNetwork, values: Sequence[int] | np.ndarray
) -> nx.Graph:
    """Graph on *values* with one edge per comparison made on this input.

    Edges carry the stage index of the (first) comparison.
    """
    trace = network.trace(values)
    g = nx.Graph()
    g.add_nodes_from(range(network.n))
    for rec in trace.comparisons:
        u, v = rec.values
        if not g.has_edge(u, v):
            g.add_edge(u, v, stage=rec.stage)
    return g


def wire_collision_graph(
    network: ComparatorNetwork, values: Sequence[int] | np.ndarray
) -> nx.Graph:
    """Graph on *input wires*: edges join wires whose values were compared.

    This is Definition 3.6's collision relation for the given input.
    """
    values = np.asarray(values)
    pos_of_value = {int(values[w]): w for w in range(network.n)}
    g = nx.Graph()
    g.add_nodes_from(range(network.n))
    value_graph = collision_graph(network, values)
    for u, v, data in value_graph.edges(data=True):
        g.add_edge(pos_of_value[u], pos_of_value[v], **data)
    return g


def uncompared_adjacent_pairs(
    network: ComparatorNetwork, values: Sequence[int] | np.ndarray
) -> list[tuple[int, int]]:
    """Adjacent value pairs ``(m, m+1)`` never compared on this input.

    A nonempty result certifies (constructively) that the network is not
    a sorting network -- the Section 2 observation.
    """
    g = collision_graph(network, values)
    return [(m, m + 1) for m in range(network.n - 1) if not g.has_edge(m, m + 1)]


def adjacent_pairs_all_compared(
    network: ComparatorNetwork, values: Sequence[int] | np.ndarray
) -> bool:
    """Necessary condition for sorting: every ``{m, m+1}`` compared."""
    return not uncompared_adjacent_pairs(network, values)
