"""Exhaustive ground truth for the lower-bound machinery (small ``n``).

The adversary of Section 4 *constructs* an input with an uncompared
adjacent pair.  For small networks we can instead search exhaustively:
over all ``n!`` inputs, find every input with an uncompared adjacent pair
(Section 2's observation).  The exhaustive search is the ground truth the
pattern-based adversary is validated against in the integration tests:

* whenever the adversary emits a certificate, the certified input must
  appear in (or be consistent with) the exhaustive witness set;
* whenever the exhaustive search finds *no* witness, the network sorts
  and the adversary must have died (its survival would contradict
  soundness).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..networks.network import ComparatorNetwork
from .collision_graph import uncompared_adjacent_pairs

__all__ = ["GroundTruth", "exhaustive_uncompared_search"]


@dataclass
class GroundTruth:
    """Result of an exhaustive uncompared-adjacent-pair search."""

    n: int
    inputs_checked: int
    witnesses: list[tuple[np.ndarray, tuple[int, int]]]
    sorts_everything: bool

    @property
    def has_witness(self) -> bool:
        """True iff some input leaves an adjacent pair uncompared."""
        return bool(self.witnesses)


def exhaustive_uncompared_search(
    network: ComparatorNetwork,
    max_wires: int = 8,
    stop_at_first: bool = False,
) -> GroundTruth:
    """Search all ``n!`` inputs for uncompared adjacent value pairs.

    Also records (via direct evaluation) whether the network sorts every
    permutation, so the two notions can be cross-checked: a network that
    sorts everything can have no witness, and -- for *comparator-only*
    networks (no ``1`` exchange elements and no stage permutations, so
    outputs are in wire order) -- a network with no witness sorts
    everything on the tested inputs.
    """
    n = network.n
    if n > max_wires:
        raise ReproError(
            f"exhaustive search over {n}! inputs refused (max_wires={max_wires})"
        )
    witnesses: list[tuple[np.ndarray, tuple[int, int]]] = []
    sorts_everything = True
    checked = 0
    for perm in itertools.permutations(range(n)):
        values = np.array(perm, dtype=np.int64)
        checked += 1
        out = network.evaluate(values)
        if (np.diff(out) < 0).any():
            sorts_everything = False
        pairs = uncompared_adjacent_pairs(network, values)
        if pairs:
            witnesses.append((values, pairs[0]))
            if stop_at_first:
                break
    return GroundTruth(
        n=n,
        inputs_checked=checked,
        witnesses=witnesses,
        sorts_everything=sorts_everything,
    )
