"""Whole-program flow analysis for the repro tree itself.

Where :mod:`repro.sanitize` checks invariants one file at a time, this
package checks the *call-chain* invariants the per-file view cannot
see: that every rng reaching a stochastic kernel is seed-derived
(``flow/unseeded-rng-path``), that every exception escaping the CLI is
a :class:`~repro.errors.ReproError` (``flow/foreign-exception-escape``
plus the ``flow/broad-except-swallow`` soundness guard), that nothing
a farm worker calls transitively mutates module state
(``flow/fork-hostile-call``), and that every module-level definition is
exported or referenced (``flow/dead-export``).

Layering (docs/FLOW.md):

* :mod:`repro.flow.graph` -- the project-wide call graph: definitions
  index, re-export resolution, class hierarchy, call/reference edges
  with handler context and rng-forwarding modes, per-function facts;
* :mod:`repro.flow.summaries` -- the interprocedural fixpoints
  (escaping exceptions, possibly-``None`` rng parameters,
  reachability);
* :mod:`repro.flow.rules` -- the rule catalog;
* :mod:`repro.flow.engine` -- discovery, baseline and pragma wiring,
  report assembly;
* :mod:`repro.flow.report` -- the versioned report and ``--graph``
  serialization.

Run it as ``repro flow src/`` or fold it into a sanitize run with
``repro sanitize --flow src/``.
"""

from .engine import FlowConfig, analyze_paths, build_program
from .graph import Edge, FunctionInfo, Program
from .report import FLOW_FORMAT, FlowReport, graph_json
from .rules import FLOW_RULES, FlowAnalysis

__all__ = [
    "FlowConfig",
    "analyze_paths",
    "build_program",
    "Program",
    "FunctionInfo",
    "Edge",
    "FLOW_FORMAT",
    "FlowReport",
    "graph_json",
    "FLOW_RULES",
    "FlowAnalysis",
]
