"""Flow reports: aggregation, text/JSON rendering, graph serialization.

A :class:`FlowReport` is the result of one whole-program analysis run:
the sorted diagnostics plus the graph's headline sizes, sharing the
severity accessors and exit-code convention of
:class:`repro.diagnostics.DiagnosticReport` with the lint and sanitize
reports.  ``FLOW_FORMAT`` versions both the report JSON and the
``--graph`` serialization; the report dataclass is pinned in the
sanitize schema fingerprint registry like every other persisted format
in the tree (``repro sanitize --fix`` re-pins after a deliberate,
version-bumped change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..diagnostics import DiagnosticReport
from ..sanitize.diagnostics import Diagnostic
from .graph import Program

__all__ = ["FLOW_FORMAT", "FlowReport", "graph_json"]

#: Version of the flow report and graph JSON documents.
FLOW_FORMAT = 1


@dataclass
class FlowReport(DiagnosticReport):
    """The outcome of one whole-program flow analysis.

    ``targets`` are the paths as requested; ``files``, ``functions``
    and ``edges`` size the analysed program (they make an unexpectedly
    empty report self-diagnosing: zero edges means resolution broke,
    not that the tree is clean); ``suppressed`` counts
    baseline-grandfathered findings hidden from ``diagnostics``.
    """

    targets: list[str] = field(default_factory=list)
    files: int = 0
    functions: int = 0
    edges: int = 0
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0

    def format_text(self) -> str:
        """Full human-readable report."""
        return self.render_text(
            f"flow {' '.join(self.targets)}: "
            f"{self.files} file{'s' if self.files != 1 else ''}, "
            f"{self.functions} functions, {self.edges} edges"
        )

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible report document."""
        return {
            "format": FLOW_FORMAT,
            "targets": self.targets,
            "files": self.files,
            "functions": self.functions,
            "edges": self.edges,
            **self.json_tail(),
        }


def graph_json(program: Program) -> dict[str, Any]:
    """Serialise the call graph (``repro flow --graph``).

    Nodes carry kind (``function``/``class``/``module``), location and
    the per-function facts; edges carry caller/callee/kind/line plus the
    rng-forwarding mode for calls.  Node and edge order is the sorted
    order the program itself uses, so two runs over the same tree emit
    bit-identical documents.
    """
    nodes: list[dict[str, Any]] = []
    for qualname in sorted(program.functions):
        finfo = program.functions[qualname]
        nodes.append(
            {
                "id": qualname,
                "kind": "function",
                "path": finfo.path,
                "line": finfo.line,
                "class": finfo.cls,
                "rng_param": finfo.rng_param,
                "abstract": finfo.is_abstract,
                "raises": sorted({site.exc for site in finfo.raises}),
            }
        )
    for qualname in sorted(program.classes):
        cinfo = program.classes[qualname]
        nodes.append(
            {
                "id": qualname,
                "kind": "class",
                "path": cinfo.path,
                "line": cinfo.line,
                "bases": list(cinfo.bases),
                "methods": sorted(cinfo.methods),
            }
        )
    for module in sorted(program.modules):
        nodes.append(
            {
                "id": module,
                "kind": "module",
                "path": program.modules[module].path,
            }
        )
    edges = [
        {
            "caller": e.caller,
            "callee": e.callee,
            "kind": e.kind,
            "path": e.path,
            "line": e.line,
            "rng": e.rng_mode,
        }
        for e in program.edges
    ]
    return {"format": FLOW_FORMAT, "nodes": nodes, "edges": edges}
