"""The flow engine: discovery, program construction, rules, report.

Entry point :func:`analyze_paths` mirrors
:func:`repro.sanitize.engine.sanitize_paths` -- deterministic (sorted)
file discovery, the ratcheted baseline, ``# sanitize: ok`` pragma
suppression -- but the analysis unit is the whole program, not one
file: every parseable file joins a single
:class:`~repro.flow.graph.Program`, the fixpoint summaries run once,
and each rule reads the global result.

Determinism contract: the report depends only on the *set* of files and
their contents, never on discovery order (property-tested in
``tests/flow/test_order_independence.py``).  Unparseable files become
``parse/syntax-error`` diagnostics, exactly as in sanitize, and are
excluded from the program rather than aborting the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..diagnostics import Baseline, apply_waivers
from ..errors import SanitizeError
from ..sanitize.diagnostics import Diagnostic, Severity, SourceLocation
from ..sanitize.engine import FileContext, SanitizeConfig, discover_files
from .graph import Program
from .report import FlowReport
from .rules import FLOW_RULES, FlowAnalysis

__all__ = ["FlowConfig", "analyze_paths", "build_program"]


@dataclass(frozen=True)
class FlowConfig:
    """Tunables for one flow run.

    ``select`` optionally restricts to rules whose id starts with one
    of the given prefixes (``--select flow/dead`` etc.), mirroring the
    sanitize and lint configs.
    """

    select: tuple[str, ...] | None = None

    def rule_enabled(self, rule_id: str) -> bool:
        """True iff ``rule_id`` passes the ``select`` filter."""
        if not self.select:
            return True
        return any(rule_id.startswith(prefix) for prefix in self.select)


def _load_contexts(
    files: list[Path],
) -> tuple[list[FileContext], list[Diagnostic]]:
    """Parse every file; syntax failures become diagnostics, not crashes."""
    shared = SanitizeConfig()
    contexts: list[FileContext] = []
    parse_diags: list[Diagnostic] = []
    for f in files:
        try:
            source = f.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            raise SanitizeError(f"cannot read {f}: {exc}") from exc
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            parse_diags.append(
                Diagnostic(
                    rule="parse/syntax-error",
                    severity=Severity.ERROR,
                    message=f"cannot parse: {exc.msg}",
                    location=SourceLocation(
                        path=f.as_posix(), line=exc.lineno, col=exc.offset
                    ),
                )
            )
            continue
        contexts.append(
            FileContext(source, f.as_posix(), tree, shared, registry={})
        )
    return contexts, parse_diags


def build_program(paths: Iterable[str | Path]) -> Program:
    """Discover, parse and index a tree without running any rules."""
    contexts, _ = _load_contexts(discover_files(paths))
    return Program.build(contexts)


def analyze_paths(
    paths: Iterable[str | Path],
    config: FlowConfig | None = None,
    baseline: Baseline | None = None,
) -> FlowReport:
    """Analyse a set of files/directories as one whole program.

    Pragma-suppressed findings are dropped silently (the pragma is the
    documented waiver); baseline-matched findings are dropped from the
    report and exit code but counted in ``report.suppressed`` so a
    grandfathered tree never reads as clean.
    """
    cfg = config or FlowConfig()
    files = discover_files(paths)
    contexts, diagnostics = _load_contexts(files)
    program = Program.build(contexts)
    analysis = FlowAnalysis.build(program)
    for rule in FLOW_RULES.values():
        if not cfg.rule_enabled(rule.id):
            continue
        diagnostics.extend(rule.check(analysis))
    kept, suppressed = apply_waivers(
        diagnostics, program.contexts, baseline
    )
    return FlowReport(
        targets=sorted(str(p) for p in paths),
        files=len(files),
        functions=len(program.functions),
        edges=len(program.edges),
        diagnostics=kept,
        suppressed=suppressed,
    )
