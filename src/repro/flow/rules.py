"""The flow rule catalog: whole-program rules over the call graph.

Mirrors the registry shape of :mod:`repro.sanitize.rules` (stable
``flow/name`` ids, severity, one-line summary), but each rule reads a
:class:`FlowAnalysis` -- the built :class:`~repro.flow.graph.Program`
plus its fixpoint summaries -- instead of a single file context.

``flow/unseeded-rng-path``
    A stochastic kernel (a function that both takes an rng-like
    parameter and constructs a constant default generator) whose rng
    can arrive as ``None`` on some call path: every such path silently
    shares the locally-pinned stream, which is exactly the bug class
    the per-file ``determinism/*`` rules cannot see.
``flow/foreign-exception-escape``
    An exception type escaping ``repro.cli.main`` without deriving from
    :class:`~repro.errors.ReproError`: the CLI maps ``ReproError`` to
    diagnostics and exit codes, anything else is a stack trace.
``flow/fork-hostile-call``
    A function reachable from a farm job handler
    (``Job.execute``/``Job.revalidate`` and overrides) that mutates
    module-level state: the mutation races the pre-fork worker pool
    even when the mutating function lives outside the per-file
    ``forksafety/*`` scope.
``flow/broad-except-swallow``
    A library ``except Exception``/``BaseException`` that neither
    re-raises nor uses the bound exception: it silently erases whole
    escape sets, so the exception-flow summary would be unsound if
    these were left unexamined.
``flow/dead-export``
    A module-level definition that is neither exported via ``__all__``
    (its own module's or any re-exporting package's) nor referenced
    anywhere in the program; also ``__all__`` entries naming nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..sanitize.diagnostics import Diagnostic, Severity, SourceLocation
from ..sanitize.rules import CLI_MODULES
from .graph import Program
from .summaries import (
    escape_sets,
    reachable,
    rng_may_arrive_none,
    witness_path,
)

__all__ = [
    "FlowRule",
    "FLOW_RULES",
    "flow_rule",
    "FlowAnalysis",
    "REPRO_ERROR",
    "ESCAPE_ALLOWLIST",
]

#: The library's exception root; dual-inheritance makes every
#: ``SomeError(ReproError, ValueError)`` pass the subtype test.
REPRO_ERROR = "repro.errors.ReproError"

#: Exception types allowed to cross ``main`` raw: process-control
#: signals the CLI deliberately lets propagate.
ESCAPE_ALLOWLIST = frozenset(
    {"SystemExit", "KeyboardInterrupt", "GeneratorExit", "BrokenPipeError"}
)

#: The farm job base class whose handler methods root fork reachability.
_JOB_BASE = "repro.farm.jobs.Job"
_HANDLER_METHODS = ("execute", "revalidate")

#: The CLI entry point rooting exception-escape analysis.
_CLI_MAIN = "repro.cli.main"


@dataclass
class FlowAnalysis:
    """The program plus every fixpoint summary the rules read."""

    program: Program
    escapes: dict[str, frozenset[str]] = field(default_factory=dict)
    may_none: dict[str, bool] = field(default_factory=dict)

    @classmethod
    def build(cls, program: Program) -> "FlowAnalysis":
        return cls(
            program=program,
            escapes=escape_sets(program),
            may_none=rng_may_arrive_none(program),
        )


@dataclass(frozen=True)
class FlowRule:
    """One registered rule: id, default severity, summary, checker."""

    id: str
    severity: Severity
    summary: str
    check: Callable[[FlowAnalysis], Iterable[Diagnostic]]


#: The global registry, keyed by rule id, in registration order.
FLOW_RULES: dict[str, FlowRule] = {}


def flow_rule(
    rule_id: str, severity: Severity, summary: str
) -> Callable[[Callable[[FlowAnalysis], Iterable[Diagnostic]]], Callable]:
    """Decorator registering a rule function under ``rule_id``."""

    def register(
        fn: Callable[[FlowAnalysis], Iterable[Diagnostic]],
    ) -> Callable:
        FLOW_RULES[rule_id] = FlowRule(
            id=rule_id, severity=severity, summary=summary, check=fn
        )
        return fn

    return register


def _chain(path: list[str]) -> str:
    return " -> ".join(path)


# ---------------------------------------------------------------------------
# flow/unseeded-rng-path


def _none_origin(analysis: FlowAnalysis, kernel: str) -> list[str]:
    """A witness chain along which ``None`` can reach the kernel's rng."""
    program = analysis.program
    chain = [kernel]
    cur = kernel
    while True:
        finfo = program.functions[cur]
        step = None
        for edge in program.edges_to.get(cur, ()):
            if edge.kind != "call":
                continue
            if edge.rng_mode == "none" or (
                edge.rng_mode == "absent" and finfo.rng_param_optional
            ):
                return [edge.caller] + chain
            if (
                edge.rng_mode == "param"
                and analysis.may_none.get(edge.caller, False)
                and edge.caller not in chain
            ):
                step = edge.caller
        if step is None:
            return chain
        chain.insert(0, step)
        cur = step


@flow_rule(
    "flow/unseeded-rng-path",
    Severity.ERROR,
    "a call path on which a stochastic kernel's rng arrives as None and "
    "triggers a locally-constructed constant default generator",
)
def check_unseeded_rng_path(analysis: FlowAnalysis) -> Iterator[Diagnostic]:
    program = analysis.program
    for qualname in sorted(program.functions):
        finfo = program.functions[qualname]
        if finfo.rng_param is None or finfo.default_rng_line is None:
            continue
        if not analysis.may_none.get(qualname, False):
            continue
        origin = _none_origin(analysis, qualname)
        if len(origin) > 1:
            how = f"via {_chain(origin)}"
        else:
            how = (
                "via any public caller omitting the keyword "
                f"({finfo.name} is exported with rng=None)"
            )
        yield Diagnostic(
            rule="flow/unseeded-rng-path",
            severity=Severity.ERROR,
            message=(
                f"{qualname} constructs a constant default generator when "
                f"its '{finfo.rng_param}' parameter arrives as None "
                f"({how}); every such path silently shares one pinned "
                "stream -- thread a seed-derived generator from the entry "
                "point instead (cf. repro.farm.jobs.Job.rng)"
            ),
            location=SourceLocation(
                path=finfo.path, line=finfo.default_rng_line
            ),
        )


# ---------------------------------------------------------------------------
# flow/foreign-exception-escape


def _escape_witness(
    analysis: FlowAnalysis, root: str, exc: str
) -> tuple[list[str], str, int]:
    """Chain from the root to a raise site of ``exc`` (path, line)."""
    program = analysis.program
    chain = [root]
    cur = root
    seen = {root}
    while True:
        finfo = program.functions.get(cur)
        if finfo is not None:
            for site in finfo.raises:
                if site.exc == exc:
                    return chain, finfo.path, site.line
        step = None
        for edge in program.edges_from.get(cur, ()):
            if edge.callee in seen:
                continue
            if exc in analysis.escapes.get(
                edge.callee, ()
            ) and not program.absorbed(exc, edge.handlers):
                step = edge.callee
                break
        if step is None:
            finfo = program.functions[root]
            return chain, finfo.path, finfo.line
        chain.append(step)
        seen.add(step)
        cur = step


@flow_rule(
    "flow/foreign-exception-escape",
    Severity.ERROR,
    "an exception escaping cli.main without dual-inheriting ReproError",
)
def check_foreign_exception_escape(
    analysis: FlowAnalysis,
) -> Iterator[Diagnostic]:
    program = analysis.program
    if _CLI_MAIN not in program.functions:
        return
    for exc in sorted(analysis.escapes.get(_CLI_MAIN, ())):
        if exc in ESCAPE_ALLOWLIST:
            continue
        if program.is_exception_subtype(exc, REPRO_ERROR):
            continue
        chain, path, line = _escape_witness(analysis, _CLI_MAIN, exc)
        yield Diagnostic(
            rule="flow/foreign-exception-escape",
            severity=Severity.ERROR,
            message=(
                f"{exc} can escape {_CLI_MAIN} as a stack trace "
                f"(via {_chain(chain)}); raise a ReproError subclass "
                f"(dual-inherit from {exc.rsplit('.', 1)[-1]}) or catch "
                "it at the boundary"
            ),
            location=SourceLocation(path=path, line=line),
        )


# ---------------------------------------------------------------------------
# flow/fork-hostile-call


def _handler_roots(program: Program) -> list[str]:
    if _JOB_BASE not in program.classes:
        return []
    roots = []
    for cls in [_JOB_BASE] + program.descendants(_JOB_BASE):
        info = program.classes.get(cls)
        if info is None:
            continue
        for method in _HANDLER_METHODS:
            qualname = info.methods.get(method)
            if qualname is None:
                continue
            if not program.functions[qualname].is_abstract:
                roots.append(qualname)
    return sorted(set(roots))


@flow_rule(
    "flow/fork-hostile-call",
    Severity.ERROR,
    "a function reachable from farm job handlers that mutates "
    "module-level state",
)
def check_fork_hostile_call(analysis: FlowAnalysis) -> Iterator[Diagnostic]:
    program = analysis.program
    roots = _handler_roots(program)
    if not roots:
        return
    parents = reachable(program, roots)
    for qualname in sorted(parents):
        finfo = program.functions.get(qualname)
        if finfo is None:
            continue
        for site in finfo.mutations:
            if site.suppressed:
                continue
            path = witness_path(parents, qualname)
            yield Diagnostic(
                rule="flow/fork-hostile-call",
                severity=Severity.ERROR,
                message=(
                    f"{site.what} in {qualname} mutates module state on a "
                    f"farm worker path ({_chain(path)}); the parent and "
                    "each forked child see their own copy, so resumed "
                    "campaigns diverge -- pass the state explicitly"
                ),
                location=SourceLocation(path=finfo.path, line=site.line),
            )


# ---------------------------------------------------------------------------
# flow/broad-except-swallow


@flow_rule(
    "flow/broad-except-swallow",
    Severity.ERROR,
    "a silent library except Exception that erases escape information",
)
def check_broad_except_swallow(
    analysis: FlowAnalysis,
) -> Iterator[Diagnostic]:
    program = analysis.program
    for qualname in sorted(program.functions):
        finfo = program.functions[qualname]
        ctx = program.contexts.get(finfo.path)
        if ctx is not None and ctx.in_scope(CLI_MODULES):
            continue
        for site in finfo.broad_excepts:
            yield Diagnostic(
                rule="flow/broad-except-swallow",
                severity=Severity.ERROR,
                message=(
                    f"except {site.caught} in {qualname} swallows every "
                    "exception without re-raising or using it; catch the "
                    "typed ReproError subclasses the callees actually "
                    "raise, or re-raise after cleanup"
                ),
                location=SourceLocation(path=finfo.path, line=site.line),
            )


# ---------------------------------------------------------------------------
# flow/dead-export


def _exported_qualnames(program: Program) -> set[str]:
    """Definitions reachable through any module's ``__all__``."""
    out: set[str] = set()
    for module in sorted(program.module_all):
        for name in program.module_all[module]:
            resolved = program.resolve(f"{module}.{name}")
            if resolved and resolved[0] in ("func", "class"):
                out.add(resolved[1])
    return out


@flow_rule(
    "flow/dead-export",
    Severity.ERROR,
    "a module-level definition that nothing exports or references",
)
def check_dead_export(analysis: FlowAnalysis) -> Iterator[Diagnostic]:
    program = analysis.program
    exported = _exported_qualnames(program)
    for module in sorted(program.module_defs):
        for qualname in program.module_defs[module]:
            name = qualname.rsplit(".", 1)[-1]
            if name.startswith("__") and name.endswith("__"):
                continue
            finfo = program.functions.get(qualname)
            cinfo = program.classes.get(qualname)
            decorated = (
                finfo.decorated if finfo is not None
                else (cinfo.decorated if cinfo is not None else True)
            )
            if decorated or qualname in exported:
                continue
            used = any(
                edge.caller != qualname
                and not edge.caller.startswith(qualname + ".")
                for edge in program.edges_to.get(qualname, ())
            )
            if cinfo is not None and not used:
                used = any(
                    any(
                        edge.caller != m
                        and not edge.caller.startswith(qualname + ".")
                        for edge in program.edges_to.get(m, ())
                    )
                    for m in cinfo.methods.values()
                )
            if used:
                continue
            path = finfo.path if finfo is not None else cinfo.path
            line = finfo.line if finfo is not None else cinfo.line
            yield Diagnostic(
                rule="flow/dead-export",
                severity=Severity.ERROR,
                message=(
                    f"{qualname} is defined but never exported via "
                    "__all__ and never referenced anywhere in the "
                    "program; delete it or export it deliberately"
                ),
                location=SourceLocation(path=path, line=line),
            )
    # stale __all__ entries: exported names that do not exist
    for module in sorted(program.module_all):
        ctx = program.modules.get(module)
        if ctx is None:
            continue
        for name in program.module_all[module]:
            if name in ctx.aliases or name in ctx.module_level_names:
                continue
            if program.resolve(f"{module}.{name}") is not None:
                continue
            yield Diagnostic(
                rule="flow/dead-export",
                severity=Severity.ERROR,
                message=(
                    f"__all__ of {module} exports {name!r}, which is not "
                    "defined or imported in that module"
                ),
                location=SourceLocation(path=ctx.path, line=1),
            )
