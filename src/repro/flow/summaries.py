"""Whole-program fixpoints over the call graph.

Three interprocedural summaries, each a monotone fixpoint over the
finite edge set of a :class:`~repro.flow.graph.Program` (so iteration
terminates even through call cycles):

``escape_sets``
    For every function, the exception types that can propagate out of
    it: its own surviving raise sites plus, for each outgoing call or
    reference edge, whatever escapes the callee minus what the edge's
    lexically-enclosing handlers absorb (a handler that re-raises
    absorbs nothing).  Reference edges conservatively count as calls --
    that is what makes ``set_defaults(func=cmd_attack)``-style dispatch
    visible to the ``cli.main`` escape analysis.

``rng_may_arrive_none``
    For every function with an rng-like parameter, whether that
    parameter can be ``None`` at entry: directly (a caller omits the
    keyword or passes literal ``None`` while the parameter defaults to
    ``None``; or the function is exported via ``__all__`` with a
    ``None`` default, so outside callers may omit it) or transitively
    (a caller forwards its *own* possibly-``None`` rng parameter).

``reachable``
    Forward reachability from a root set over call (and optionally
    reference) edges, returning the BFS parent map so rules can print a
    concrete witness path.

Everything iterates in sorted order, so results are independent of file
discovery order (property-tested in ``tests/flow``).
"""

from __future__ import annotations

from .graph import Program

__all__ = [
    "escape_sets",
    "rng_may_arrive_none",
    "reachable",
    "witness_path",
]


def escape_sets(program: Program) -> dict[str, frozenset[str]]:
    """Exception types escaping each function, to a fixpoint."""
    escapes: dict[str, set[str]] = {
        q: {site.exc for site in f.raises}
        for q, f in program.functions.items()
    }
    order = sorted(program.functions)
    changed = True
    while changed:
        changed = False
        for qualname in order:
            out = escapes[qualname]
            for edge in program.edges_from.get(qualname, ()):
                for exc in escapes.get(edge.callee, ()):
                    if exc in out:
                        continue
                    if program.absorbed(exc, edge.handlers):
                        continue
                    out.add(exc)
                    changed = True
    return {q: frozenset(v) for q, v in escapes.items()}


def _publicly_exported(program: Program, qualname: str) -> bool:
    """True iff the function is named in its module's ``__all__``."""
    finfo = program.functions[qualname]
    exported = program.module_all.get(finfo.module, ())
    return finfo.cls is None and finfo.name in exported


def rng_may_arrive_none(program: Program) -> dict[str, bool]:
    """Which rng-like parameters can be ``None`` at entry, to a fixpoint."""
    may_none: dict[str, bool] = {}
    candidates = sorted(
        q for q, f in program.functions.items() if f.rng_param is not None
    )
    for qualname in candidates:
        finfo = program.functions[qualname]
        may_none[qualname] = finfo.rng_param_optional and _publicly_exported(
            program, qualname
        )
    changed = True
    while changed:
        changed = False
        for qualname in candidates:
            if may_none[qualname]:
                continue
            finfo = program.functions[qualname]
            for edge in program.edges_to.get(qualname, ()):
                if edge.kind != "call":
                    continue
                if edge.rng_mode == "none" or (
                    edge.rng_mode == "absent" and finfo.rng_param_optional
                ):
                    may_none[qualname] = True
                    changed = True
                    break
                if edge.rng_mode == "param" and may_none.get(
                    edge.caller, False
                ):
                    may_none[qualname] = True
                    changed = True
                    break
    return may_none


def reachable(
    program: Program,
    roots: list[str],
    *,
    kinds: tuple[str, ...] = ("call", "ref"),
) -> dict[str, str | None]:
    """BFS over outgoing edges; maps each reached node to its parent."""
    parents: dict[str, str | None] = {}
    queue: list[str] = []
    for root in sorted(set(roots)):
        parents[root] = None
        queue.append(root)
    while queue:
        cur = queue.pop(0)
        for edge in program.edges_from.get(cur, ()):
            if edge.kind not in kinds or edge.callee in parents:
                continue
            parents[edge.callee] = cur
            queue.append(edge.callee)
    return parents


def witness_path(parents: dict[str, str | None], target: str) -> list[str]:
    """The root-to-target chain recorded by :func:`reachable`."""
    path: list[str] = []
    cur: str | None = target
    while cur is not None and cur not in path:
        path.append(cur)
        cur = parents.get(cur)
    return list(reversed(path))
