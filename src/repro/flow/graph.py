"""The project-wide call graph: definitions, resolution, edges, facts.

Builds directly on the per-file passes :mod:`repro.sanitize` already
computes (:class:`~repro.sanitize.engine.FileContext` supplies module
names, import-alias resolution with relative imports expanded, and the
``# sanitize: ok`` pragma grammar) and adds the *whole-program* layer:

* a definitions index keyed by dotted qualname
  (``repro.core.attack.attack_circuit``,
  ``repro.farm.jobs.AttackJob.execute``);
* a class table with bases, methods, and subclass links, giving
  method-resolution-order lookups and exception-subtype tests (a small
  builtin exception hierarchy covers the stdlib side);
* re-export resolution that follows package ``__init__`` alias chains
  (``repro.farm.ArtifactStore`` hops to
  ``repro.farm.store.ArtifactStore``);
* call and reference edges annotated with the exception handlers
  lexically enclosing each site and with how (and whether) an ``rng``
  argument is forwarded;
* per-function facts feeding the fixpoints in
  :mod:`repro.flow.summaries`: raise sites that survive local
  handlers, module-state mutation sites (the
  ``forksafety/module-state-mutation`` idiom, pragma-aware), silent
  broad ``except`` clauses, and constant default-``rng`` construction.

Resolution is deliberately conservative in opposite directions for the
two consumers: *liveness* (``flow/dead-export``) counts every resolvable
reference as use, while *reachability* (``flow/fork-hostile-call``,
``flow/foreign-exception-escape``) follows call edges plus references,
so an unresolvable dynamic dispatch can hide work but a resolvable one
is never dropped.  Known blind spots (callable-valued dataclass fields,
exceptions raised inside third-party libraries) are documented in
``docs/FLOW.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..sanitize.engine import _PRAGMA, FileContext

# The mutating-method vocabulary is shared with the per-file analyzer so
# the two layers cannot drift on what counts as a container mutation.
from ..sanitize.rules import _MUTATORS

__all__ = [
    "Handler",
    "Edge",
    "RaiseSite",
    "MutationSite",
    "BroadExceptSite",
    "FunctionInfo",
    "ClassInfo",
    "Program",
]

#: Immediate base of each builtin exception the tree touches; the
#: program class table covers everything defined in-tree, this table
#: covers the stdlib side of dual-inheritance chains.
_BUILTIN_EXC_BASES: dict[str, str] = {
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "LookupError": "Exception",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "OSError": "Exception",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "StopAsyncIteration": "Exception",
    "StopIteration": "Exception",
    "SyntaxError": "Exception",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "Warning": "Exception",
    "FloatingPointError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "ZeroDivisionError": "ArithmeticError",
    "ModuleNotFoundError": "ImportError",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "UnboundLocalError": "NameError",
    "BlockingIOError": "OSError",
    "BrokenPipeError": "OSError",
    "FileExistsError": "OSError",
    "FileNotFoundError": "OSError",
    "IsADirectoryError": "OSError",
    "PermissionError": "OSError",
    "TimeoutError": "OSError",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "json.JSONDecodeError": "ValueError",
    "GeneratorExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
}

#: Method names too generic to link by name alone: they collide with
#: builtin container/str/file methods, so an untyped receiver would pull
#: in near-random edges.  Receivers typed via ``self``, constructor
#: assignment, or annotations still resolve these precisely.
_GENERIC_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "close",
        "copy",
        "count",
        "extend",
        "format",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "open",
        "pop",
        "popitem",
        "read",
        "remove",
        "setdefault",
        "sort",
        "split",
        "strip",
        "update",
        "values",
        "write",
    }
)

#: Name-based method linking gives up above this many candidates: a
#: vocabulary word shared by that many classes says nothing about the
#: receiver.
_MAX_NAMED_TARGETS = 12

#: Rule ids a pragma must cover to suppress a mutation site: the
#: per-file ids (a site excused for the per-file analyzer is excused
#: here too -- one pragma, both layers) plus the flow rule's own id.
_MUTATION_RULE_IDS = (
    "forksafety/module-state-mutation",
    "forksafety/global-statement",
    "flow/fork-hostile-call",
)


@dataclass(frozen=True)
class Handler:
    """One ``except`` clause enclosing a site: caught types, re-raise."""

    types: tuple[str, ...]
    reraises: bool


@dataclass(frozen=True)
class RaiseSite:
    """An exception construction that escapes its local handlers."""

    exc: str
    line: int


@dataclass(frozen=True)
class MutationSite:
    """A module-state mutation inside a function body."""

    what: str
    line: int
    suppressed: bool


@dataclass(frozen=True)
class BroadExceptSite:
    """An ``except Exception``/``BaseException`` that swallows silently."""

    line: int
    caught: str


@dataclass(frozen=True)
class Edge:
    """One call or reference from ``caller`` to ``callee``.

    ``kind`` is ``"call"`` for an invocation and ``"ref"`` for a plain
    name use (registry dicts, ``set_defaults(func=...)``, decorators);
    reachability and escape propagation treat both as potential
    transfers of control.  ``rng_mode`` (calls only) classifies how an
    ``rng`` keyword is forwarded: ``"absent"`` (not passed),
    ``"none"`` (literal ``None``), ``"param"`` (the caller forwards its
    own rng-like parameter), ``"value"`` (anything else, assumed
    non-``None``).  ``handlers`` are the ``except`` clauses lexically
    enclosing the site, innermost last.
    """

    caller: str
    callee: str
    path: str
    line: int
    kind: str
    rng_mode: str | None
    handlers: tuple[Handler, ...]


@dataclass
class FunctionInfo:
    """One indexed function or method plus its local facts."""

    qualname: str
    module: str
    name: str
    cls: str | None
    path: str
    line: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...]
    rng_param: str | None
    rng_param_optional: bool
    decorated: bool
    is_abstract: bool
    default_rng_line: int | None = None
    raises: tuple[RaiseSite, ...] = ()
    mutations: tuple[MutationSite, ...] = ()
    broad_excepts: tuple[BroadExceptSite, ...] = ()


@dataclass
class ClassInfo:
    """One indexed class: resolved bases and its own methods."""

    qualname: str
    module: str
    name: str
    path: str
    line: int
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)
    decorated: bool = False


def _rng_like(name: str) -> bool:
    """Parameter names that carry a generator by convention."""
    return name == "rng" or name.endswith("_rng")


def _pragma_covers(ctx: FileContext, line: int, rule_ids: tuple[str, ...]) -> bool:
    """True iff a ``# sanitize: ok`` pragma on ``line`` covers any id."""
    if not (1 <= line <= len(ctx.lines)):
        return False
    match = _PRAGMA.search(ctx.lines[line - 1])
    if match is None:
        return False
    prefixes = match.group(1)
    if prefixes is None:
        return True
    wanted = [p.strip() for p in prefixes.split(",") if p.strip()]
    return any(rid.startswith(p) for rid in rule_ids for p in wanted)


class Program:
    """The whole-program index: definitions, resolution, edges."""

    def __init__(self) -> None:
        self.contexts: dict[str, FileContext] = {}  # path -> context
        self.modules: dict[str, FileContext] = {}  # module name -> context
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.module_all: dict[str, tuple[str, ...]] = {}
        self.module_defs: dict[str, list[str]] = {}  # module-level def/class
        self.dispatch: dict[str, tuple[str, ...]] = {}  # module.VAR -> targets
        self.edges: list[Edge] = []
        self.edges_from: dict[str, list[Edge]] = {}
        self.edges_to: dict[str, list[Edge]] = {}
        self.subclasses: dict[str, list[str]] = {}
        self._resolve_memo: dict[str, tuple[str, str] | None] = {}
        self._methods_named: dict[str, tuple[str, ...]] = {}

    # -- construction ------------------------------------------------

    @classmethod
    def build(cls, contexts: list[FileContext]) -> "Program":
        """Index definitions, then extract edges and per-function facts.

        ``contexts`` may arrive in any order; everything is keyed by
        path/qualname and iterated in sorted order downstream, so the
        result is independent of discovery order.
        """
        program = cls()
        for ctx in sorted(contexts, key=lambda c: c.path):
            program.contexts[ctx.path] = ctx
            if ctx.module and ctx.module not in program.modules:
                program.modules[ctx.module] = ctx
        for path in sorted(program.contexts):
            program._index_file(program.contexts[path])
        for cinfo in program.classes.values():
            for base in cinfo.bases:
                resolved = program.resolve(base, cinfo.module)
                key = resolved[1] if resolved and resolved[0] == "class" else base
                program.subclasses.setdefault(key, []).append(cinfo.qualname)
        for lst in program.subclasses.values():
            lst.sort()
        for path in sorted(program.contexts):
            program._extract_file(program.contexts[path])
        program.edges.sort(
            key=lambda e: (e.path, e.line, e.caller, e.callee, e.kind)
        )
        for edge in program.edges:
            program.edges_from.setdefault(edge.caller, []).append(edge)
            program.edges_to.setdefault(edge.callee, []).append(edge)
        return program

    def _index_file(self, ctx: FileContext) -> None:
        module = ctx.module
        self.module_defs.setdefault(module, [])
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(ctx, stmt, cls=None, top=True)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(ctx, stmt, prefix=module, top=True)
            elif isinstance(stmt, ast.Assign):
                self._index_assign(ctx, stmt)

    def _index_assign(self, ctx: FileContext, stmt: ast.Assign) -> None:
        """Record ``__all__`` lists and module-level dispatch dicts."""
        for target in stmt.targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "__all__" and isinstance(
                stmt.value, (ast.List, ast.Tuple)
            ):
                names = tuple(
                    e.value
                    for e in stmt.value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                )
                self.module_all.setdefault(ctx.module, names)
            elif isinstance(stmt.value, ast.Dict):
                targets = []
                for value in stmt.value.values:
                    dotted = ctx.resolve(value)
                    if dotted is None:
                        targets = []
                        break
                    targets.append(dotted)
                if targets:
                    key = f"{ctx.module}.{target.id}"
                    self.dispatch.setdefault(key, tuple(targets))

    def _index_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
        top: bool,
    ) -> None:
        prefix = cls if cls is not None else ctx.module
        qualname = f"{prefix}.{node.name}"
        if qualname in self.functions or qualname in self.classes:
            return  # redefinition: first (sorted-path) definition wins
        args = node.args
        params = tuple(
            a.arg
            for a in args.posonlyargs + args.args + args.kwonlyargs
        )
        rng_param, optional = self._rng_param(args)
        self.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=ctx.module,
            name=node.name,
            cls=cls,
            path=ctx.path,
            line=node.lineno,
            node=node,
            params=params,
            rng_param=rng_param,
            rng_param_optional=optional,
            decorated=bool(node.decorator_list),
            is_abstract=self._is_abstract_marker(ctx, node),
        )
        if cls is not None:
            self.classes[cls].methods.setdefault(node.name, qualname)
        elif top:
            self.module_defs[ctx.module].append(qualname)

    def _index_class(
        self, ctx: FileContext, node: ast.ClassDef, prefix: str, top: bool
    ) -> None:
        qualname = f"{prefix}.{node.name}"
        if qualname in self.classes or qualname in self.functions:
            return
        bases = []
        for base in node.bases:
            dotted = ctx.resolve(base)
            if dotted is not None:
                bases.append(self._qualify(dotted, ctx.module))
        self.classes[qualname] = ClassInfo(
            qualname=qualname,
            module=ctx.module,
            name=node.name,
            path=ctx.path,
            line=node.lineno,
            bases=tuple(bases),
            decorated=bool(node.decorator_list),
        )
        if top:
            self.module_defs[ctx.module].append(qualname)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(ctx, stmt, cls=qualname, top=False)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(ctx, stmt, prefix=qualname, top=False)

    @staticmethod
    def _rng_param(args: ast.arguments) -> tuple[str | None, bool]:
        """The rng-like parameter and whether it defaults to ``None``."""
        pos = args.posonlyargs + args.args
        defaults: list[ast.expr | None] = [None] * (
            len(pos) - len(args.defaults)
        ) + list(args.defaults)
        for a, d in list(zip(pos, defaults)) + list(
            zip(args.kwonlyargs, args.kw_defaults)
        ):
            if _rng_like(a.arg):
                optional = (
                    isinstance(d, ast.Constant) and d.value is None
                )
                return a.arg, optional
        return None, False

    @staticmethod
    def _is_abstract_marker(
        ctx: FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        """Sole-statement ``raise NotImplementedError`` bodies.

        These mark abstract methods; every concrete call site resolves
        to an override, so counting the marker as a raised exception
        would fabricate escape paths through ``main``.
        """
        body = node.body
        if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant
        ):
            body = body[1:]
        if len(body) != 1 or not isinstance(body[0], ast.Raise):
            return False
        exc = body[0].exc
        if exc is None:
            return False
        target = exc.func if isinstance(exc, ast.Call) else exc
        return ctx.resolve(target) == "NotImplementedError"

    # -- name resolution ---------------------------------------------

    def _qualify(self, dotted: str, module: str) -> str:
        """Prefer the module-local definition for bare (undotted) names."""
        if "." not in dotted:
            local = f"{module}.{dotted}"
            if local in self.functions or local in self.classes:
                return local
        return dotted

    def resolve(
        self, dotted: str | None, module: str | None = None
    ) -> tuple[str, str] | None:
        """Map a dotted name to ``(kind, qualname)`` across re-exports.

        ``kind`` is ``"func"``, ``"class"``, ``"module"`` or
        ``"dispatch"``; alias chains through package ``__init__``
        modules are followed with a visited-set (cyclic re-exports
        terminate).  ``module`` qualifies bare local names.
        """
        if dotted is None:
            return None
        if module is not None:
            dotted = self._qualify(dotted, module)
        memo = self._resolve_memo
        if dotted in memo:
            return memo[dotted]
        seen: set[str] = set()
        cur: str | None = dotted
        result: tuple[str, str] | None = None
        while cur is not None and cur not in seen:
            seen.add(cur)
            if cur in self.functions:
                result = ("func", cur)
                break
            if cur in self.classes:
                result = ("class", cur)
                break
            if cur in self.dispatch:
                result = ("dispatch", cur)
                break
            if cur in self.modules:
                result = ("module", cur)
                break
            head, _, tail = cur.rpartition(".")
            if head in self.classes and tail:
                target = self.method_in_hierarchy(head, tail)
                if target is not None:
                    result = ("func", target)
                break
            cur = self._alias_hop(cur)
        memo[dotted] = result
        return result

    def _alias_hop(self, dotted: str) -> str | None:
        """One hop through the longest module prefix's import aliases."""
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            ctx = self.modules.get(module)
            if ctx is None:
                continue
            alias = ctx.aliases.get(parts[i])
            if alias is None:
                return None
            return ".".join([alias] + parts[i + 1 :])
        return None

    def method_in_hierarchy(self, cls: str, name: str) -> str | None:
        """Resolve a method by walking the class's bases (MRO-ish, BFS)."""
        queue, seen = [cls], set()
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            info = self.classes.get(cur)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            for base in info.bases:
                resolved = self.resolve(base, info.module)
                if resolved and resolved[0] == "class":
                    queue.append(resolved[1])
        return None

    def method_targets(self, cls: str, name: str) -> list[str]:
        """The method a typed receiver can dispatch to, plus overrides."""
        targets: set[str] = set()
        base = self.method_in_hierarchy(cls, name)
        if base is not None:
            targets.add(base)
        for sub in self.descendants(cls):
            info = self.classes.get(sub)
            if info and name in info.methods:
                targets.add(info.methods[name])
        return sorted(targets)

    def descendants(self, cls: str) -> list[str]:
        """All transitive subclasses of ``cls`` (sorted)."""
        out: set[str] = set()
        queue = list(self.subclasses.get(cls, ()))
        while queue:
            cur = queue.pop()
            if cur in out:
                continue
            out.add(cur)
            queue.extend(self.subclasses.get(cur, ()))
        return sorted(out)

    def methods_named(self, name: str) -> tuple[str, ...]:
        """Name-based fallback targets for untyped receivers."""
        if name in self._methods_named:
            return self._methods_named[name]
        hits = tuple(
            sorted(
                f.qualname
                for f in self.functions.values()
                if f.cls is not None and f.name == name
            )
        )
        if name in _GENERIC_METHODS or len(hits) > _MAX_NAMED_TARGETS:
            hits = ()
        self._methods_named[name] = hits
        return hits

    # -- exception subtyping -----------------------------------------

    def exception_bases(self, exc: str) -> list[str]:
        """Immediate bases of an exception type name (program + builtin)."""
        info = self.classes.get(exc)
        if info is not None:
            out = []
            for base in info.bases:
                resolved = self.resolve(base, info.module)
                out.append(
                    resolved[1]
                    if resolved and resolved[0] == "class"
                    else base
                )
            return out
        builtin = _BUILTIN_EXC_BASES.get(exc)
        return [builtin] if builtin else []

    def is_exception_subtype(self, exc: str, base: str) -> bool:
        """True iff ``exc`` is ``base`` or transitively derives from it."""
        queue, seen = [exc], set()
        while queue:
            cur = queue.pop(0)
            if cur == base:
                return True
            if cur in seen:
                continue
            seen.add(cur)
            queue.extend(self.exception_bases(cur))
        return False

    def handler_catches(self, handler: Handler, exc: str) -> bool:
        """True iff one ``except`` clause would catch ``exc``."""
        return any(self.is_exception_subtype(exc, t) for t in handler.types)

    def absorbed(self, exc: str, handlers: tuple[Handler, ...]) -> bool:
        """True iff an enclosing non-re-raising handler stops ``exc``."""
        return any(
            not h.reraises and self.handler_catches(h, exc)
            for h in handlers
        )

    # -- edge and fact extraction ------------------------------------

    def _extract_file(self, ctx: FileContext) -> None:
        for qualname in sorted(self.functions):
            finfo = self.functions[qualname]
            if finfo.path != ctx.path:
                continue
            walker = _SiteWalker(self, ctx, qualname, finfo)
            walker.run_function(finfo.node)
            finfo.raises = tuple(walker.raises)
            finfo.mutations = tuple(walker.mutations)
            finfo.broad_excepts = tuple(walker.broad_excepts)
            finfo.default_rng_line = walker.default_rng_line
            self.edges.extend(walker.edges)
        module_walker = _SiteWalker(self, ctx, ctx.module, None)
        module_walker.run_module(ctx.tree)
        self.edges.extend(module_walker.edges)


class _SiteWalker:
    """Extracts edges and local facts for one function (or module) body.

    Tracks the lexical ``try`` context so every edge and raise knows
    which handlers enclose it, and a small flow-insensitive local
    environment (constructor assignments, annotated parameters,
    dispatch-table lookups) so method calls on locally-typed receivers
    resolve precisely.
    """

    def __init__(
        self,
        program: Program,
        ctx: FileContext,
        caller: str,
        finfo: FunctionInfo | None,
    ) -> None:
        self.program = program
        self.ctx = ctx
        self.caller = caller
        self.finfo = finfo
        self.module_mode = finfo is None
        self.edges: list[Edge] = []
        self.raises: list[RaiseSite] = []
        self.mutations: list[MutationSite] = []
        self.broad_excepts: list[BroadExceptSite] = []
        self.default_rng_line: int | None = None
        self.local_class: dict[str, str] = {}
        self.local_funcs: dict[str, tuple[str, ...]] = {}

    # -- entry points -------------------------------------------------

    def run_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._seed_param_types(node)
        for stmt in node.body:
            self._visit(stmt, (), None)

    def run_module(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            self._visit(stmt, (), None)

    def _seed_param_types(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            if a.annotation is None:
                continue
            ann: ast.expr = a.annotation
            resolved = self.program.resolve(
                self.ctx.resolve(ann), self.ctx.module
            )
            if resolved and resolved[0] == "class":
                self.local_class[a.arg] = resolved[1]

    # -- the walker ---------------------------------------------------

    def _visit(
        self,
        node: ast.AST,
        handlers: tuple[Handler, ...],
        current: Handler | None,
    ) -> None:
        if isinstance(node, ast.Try):
            self._visit_try(node, handlers, current)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Decorators and defaults evaluate here and now; the body is
            # either someone else's function (module mode) or runs later,
            # outside the enclosing try context.
            for dec in node.decorator_list:
                self._visit(dec, handlers, current)
            for default in self._defaults(node.args):
                self._visit(default, handlers, current)
            if not self.module_mode:
                for stmt in node.body:
                    self._visit(stmt, (), None)
        elif isinstance(node, ast.Lambda):
            for default in self._defaults(node.args):
                self._visit(default, handlers, current)
            self._visit(node.body, (), None)
        elif isinstance(node, ast.ClassDef):
            for dec in node.decorator_list:
                self._visit(dec, handlers, current)
            for base in node.bases:
                self._visit(base, handlers, current)
            for kw in node.keywords:
                self._visit(kw.value, handlers, current)
            for stmt in node.body:
                self._visit(stmt, handlers, current)
        elif isinstance(node, ast.Raise):
            self._record_raise(node, handlers, current)
            for child in (node.exc, node.cause):
                if child is not None:
                    self._visit_expr_parts(child, handlers, current)
        elif isinstance(node, ast.Global):
            if not self.module_mode:
                self._record_mutation(
                    f"global {', '.join(node.names)}", node.lineno
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._visit_assign(node, handlers, current)
        elif isinstance(node, ast.Call):
            self._visit_call(node, handlers, current)
        elif isinstance(node, (ast.Name, ast.Attribute)):
            self._record_ref(node, handlers)
        else:
            for child in ast.iter_child_nodes(node):
                self._visit(child, handlers, current)

    def _visit_expr_parts(
        self,
        node: ast.AST,
        handlers: tuple[Handler, ...],
        current: Handler | None,
    ) -> None:
        """Visit an expression subtree for its edges (no statement facts)."""
        self._visit(node, handlers, current)

    @staticmethod
    def _defaults(args: ast.arguments) -> list[ast.expr]:
        return list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]

    def _visit_try(
        self,
        node: ast.Try,
        handlers: tuple[Handler, ...],
        current: Handler | None,
    ) -> None:
        infos = tuple(self._handler_info(h) for h in node.handlers)
        for stmt in node.body:
            self._visit(stmt, handlers + infos, current)
        for clause, info in zip(node.handlers, infos):
            self._record_broad_except(clause, info)
            if clause.type is not None:
                self._visit_expr_parts(clause.type, handlers, current)
            for stmt in clause.body:
                self._visit(stmt, handlers, info)
        for stmt in node.orelse:
            self._visit(stmt, handlers, current)
        for stmt in node.finalbody:
            self._visit(stmt, handlers, current)

    def _handler_info(self, clause: ast.ExceptHandler) -> Handler:
        if clause.type is None:
            types: tuple[str, ...] = ("BaseException",)
        else:
            exprs = (
                clause.type.elts
                if isinstance(clause.type, ast.Tuple)
                else [clause.type]
            )
            types = tuple(
                self._exception_name(e) for e in exprs
            )
            types = tuple(t for t in types if t)
        reraises = any(
            isinstance(n, ast.Raise)
            and (
                n.exc is None
                or (
                    clause.name is not None
                    and isinstance(n.exc, ast.Name)
                    and n.exc.id == clause.name
                )
            )
            for n in ast.walk(clause)
        )
        return Handler(types=types, reraises=reraises)

    def _exception_name(self, expr: ast.expr) -> str:
        dotted = self.ctx.resolve(expr)
        if dotted is None:
            return ""
        resolved = self.program.resolve(dotted, self.ctx.module)
        if resolved and resolved[0] == "class":
            return resolved[1]
        if dotted == "BaseException" or dotted in _BUILTIN_EXC_BASES:
            return dotted
        if "." in dotted:
            # module-qualified foreign type (``zlib.error`` etc.)
            return dotted
        # A bare name that resolves to neither a program class nor a
        # builtin exception is a local variable (``raise exc``), not a
        # type; its type was recorded where the value was constructed.
        return ""

    def _record_broad_except(
        self, clause: ast.ExceptHandler, info: Handler
    ) -> None:
        if self.module_mode:
            return
        caught = [t for t in info.types if t in ("Exception", "BaseException")]
        if not caught or info.reraises:
            return
        if clause.name is not None and any(
            isinstance(n, ast.Name) and n.id == clause.name
            for n in ast.walk(clause)
        ):
            return  # the exception is bound and used, not swallowed
        self.broad_excepts.append(
            BroadExceptSite(line=clause.lineno, caught=caught[0])
        )

    def _record_raise(
        self,
        node: ast.Raise,
        handlers: tuple[Handler, ...],
        current: Handler | None,
    ) -> None:
        if self.module_mode or self.finfo is None:
            return
        if self.finfo.is_abstract:
            return
        if node.exc is None:
            # Bare re-raise: record nothing here.  The handler's
            # ``reraises`` flag already stops it from absorbing, so the
            # original raise sites (in the try body or its callees)
            # propagate on their own; re-recording the *caught* types
            # would widen e.g. ``except BaseException: ... raise`` into
            # a phantom direct ``BaseException`` raise.
            excs: list[str] = []
        else:
            target = (
                node.exc.func
                if isinstance(node.exc, ast.Call)
                else node.exc
            )
            name = self._exception_name(target)
            excs = [name] if name else []
        for exc in excs:
            if not self.program.absorbed(exc, handlers):
                self.raises.append(RaiseSite(exc=exc, line=node.lineno))

    def _record_mutation(self, what: str, line: int) -> None:
        suppressed = _pragma_covers(self.ctx, line, _MUTATION_RULE_IDS)
        self.mutations.append(
            MutationSite(what=what, line=line, suppressed=suppressed)
        )

    def _visit_assign(
        self,
        node: ast.Assign | ast.AnnAssign | ast.AugAssign,
        handlers: tuple[Handler, ...],
        current: Handler | None,
    ) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        # module-state mutation: assignment into a module-level object
        if not self.module_mode:
            names = self.ctx.module_level_names
            for target in targets:
                if (
                    isinstance(target, (ast.Subscript, ast.Attribute))
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    self._record_mutation(
                        f"assignment into {target.value.id}", node.lineno
                    )
                    break
        # local typing environment
        value = node.value
        if value is not None and len(targets) == 1 and isinstance(
            targets[0], ast.Name
        ):
            self._bind_local(targets[0].id, value)
        # subscript/attribute targets may contain calls
        for target in targets:
            if not isinstance(target, ast.Name):
                self._visit_expr_parts(target, handlers, current)
        if value is not None:
            self._visit(value, handlers, current)
        ann = getattr(node, "annotation", None)
        if ann is not None and isinstance(targets[0], ast.Name):
            resolved = self.program.resolve(
                self.ctx.resolve(ann), self.ctx.module
            )
            if resolved and resolved[0] == "class":
                self.local_class[targets[0].id] = resolved[1]

    def _bind_local(self, name: str, value: ast.expr) -> None:
        if isinstance(value, ast.Call):
            resolved = self.program.resolve(
                self.ctx.resolve(value.func), self.ctx.module
            )
            if resolved and resolved[0] == "class":
                self.local_class[name] = resolved[1]
        elif isinstance(value, (ast.Name, ast.Attribute)):
            resolved = self.program.resolve(
                self.ctx.resolve(value), self.ctx.module
            )
            if resolved and resolved[0] == "func":
                self.local_funcs[name] = (resolved[1],)
        elif isinstance(value, ast.Subscript):
            targets = self._dispatch_targets(value)
            if targets:
                self.local_funcs[name] = targets

    def _dispatch_targets(self, sub: ast.Subscript) -> tuple[str, ...]:
        """Functions behind ``TABLE[key]`` for a known dispatch dict."""
        resolved = self.program.resolve(
            self.ctx.resolve(sub.value), self.ctx.module
        )
        if not resolved or resolved[0] != "dispatch":
            return ()
        values = self.program.dispatch[resolved[1]]
        out: set[str] = set()
        owner = resolved[1].rsplit(".", 1)[0]
        for dotted in values:
            r = self.program.resolve(dotted, owner)
            if r and r[0] == "func":
                out.add(r[1])
        return tuple(sorted(out))

    # -- calls and references ----------------------------------------

    def _visit_call(
        self,
        node: ast.Call,
        handlers: tuple[Handler, ...],
        current: Handler | None,
    ) -> None:
        targets, class_ref = self._call_targets(node.func)
        rng_mode = self._rng_mode(node)
        for target in targets:
            self._add_edge(node, target, "call", rng_mode, handlers)
        if class_ref is not None:
            self._add_edge(node, class_ref, "ref", None, handlers)
        self._check_default_rng(node)
        if not targets and class_ref is None and not isinstance(
            node.func, ast.Name
        ):
            # unresolved receiver chains may still contain calls inside
            self._visit_expr_parts(node.func, handlers, current)
        for arg in node.args:
            self._visit(arg, handlers, current)
        for kw in node.keywords:
            self._visit(kw.value, handlers, current)

    def _check_default_rng(self, node: ast.Call) -> None:
        """Constant default-generator construction (the kernel marker).

        ``default_rng()`` / ``default_rng(0)`` with only constant
        arguments is a locally-pinned stream: every caller that lets
        ``rng`` arrive as ``None`` silently shares it.  Seed-derived
        construction (``default_rng(seed)``) is the sanctioned repair
        and does not match.
        """
        if self.module_mode or self.finfo is None:
            return
        if self.ctx.resolve(node.func) not in (
            "numpy.random.default_rng",
            "numpy.random.RandomState",
        ):
            return
        values = list(node.args) + [kw.value for kw in node.keywords]
        if all(isinstance(v, ast.Constant) for v in values):
            if self.default_rng_line is None:
                self.default_rng_line = node.lineno

    def _call_targets(
        self, func: ast.expr
    ) -> tuple[list[str], str | None]:
        """Resolve a call's target functions (and a referenced class)."""
        program, ctx = self.program, self.ctx
        if isinstance(func, ast.Name) and func.id in self.local_funcs:
            return list(self.local_funcs[func.id]), None
        if isinstance(func, ast.Subscript):
            return list(self._dispatch_targets(func)), None
        dotted = ctx.resolve(func)
        resolved = program.resolve(dotted, ctx.module)
        if resolved is not None:
            kind, qualname = resolved
            if kind == "func":
                return [qualname], None
            if kind == "class":
                init = program.method_in_hierarchy(qualname, "__init__")
                return ([init] if init else []), qualname
            return [], None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base, attr = func.value.id, func.attr
            if base in ("self", "cls") and self.finfo and self.finfo.cls:
                return program.method_targets(self.finfo.cls, attr), None
            if base in self.local_class:
                return program.method_targets(self.local_class[base], attr), None
        if isinstance(func, ast.Attribute):
            return list(program.methods_named(func.attr)), None
        return [], None

    def _rng_mode(self, node: ast.Call) -> str:
        for kw in node.keywords:
            if kw.arg is None or not _rng_like(kw.arg):
                continue
            value = kw.value
            if isinstance(value, ast.Constant) and value.value is None:
                return "none"
            if (
                isinstance(value, ast.Name)
                and self.finfo is not None
                and self.finfo.rng_param == value.id
            ):
                return "param"
            return "value"
        return "absent"

    def _record_ref(
        self, node: ast.Name | ast.Attribute, handlers: tuple[Handler, ...]
    ) -> None:
        dotted = self.ctx.dotted(node)
        if dotted is None:
            # e.g. attribute of a call result: look inside the value
            if isinstance(node, ast.Attribute):
                self._visit(node.value, handlers, None)
            return
        resolved = self.program.resolve(
            self.ctx.resolve(node), self.ctx.module
        )
        if resolved is None:
            return
        kind, qualname = resolved
        if kind in ("func", "class"):
            self._add_edge(node, qualname, "ref", None, handlers)

    def _add_edge(
        self,
        node: ast.AST,
        callee: str,
        kind: str,
        rng_mode: str | None,
        handlers: tuple[Handler, ...],
    ) -> None:
        if callee == self.caller:
            return  # self-recursion carries no new information
        self.edges.append(
            Edge(
                caller=self.caller,
                callee=callee,
                path=self.ctx.path,
                line=getattr(node, "lineno", 0),
                kind=kind,
                rng_mode=rng_mode,
                handlers=handlers,
            )
        )