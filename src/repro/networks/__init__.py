"""Comparator-network substrate: circuit/register models and topologies.

This subpackage implements everything the paper's lower-bound argument
runs against: the two equivalent comparator-network models of Section 1,
the shuffle permutation, and the delta / reverse delta / butterfly
topologies of Section 3.2.
"""

from .gates import Gate, Op, comparator, exchange, passthrough, reverse_comparator
from .level import Level
from .network import ComparatorNetwork, ComparisonRecord, EvaluationTrace, Stage
from .permutations import (
    Permutation,
    bit_reversal_permutation,
    bit_rotation_permutation,
    from_cycles,
    identity_permutation,
    random_permutation,
    reversal_permutation,
    shuffle_permutation,
    transposition,
    unshuffle_permutation,
    xor_permutation,
)
from .registers import RegisterProgram, RegisterStep
from .delta import IteratedReverseDeltaNetwork, ReverseDeltaNetwork
from .builders import (
    bitonic_iterated_rdn,
    bitonic_phase_rdn,
    butterfly_rdn,
    constant_op_chooser,
    empty_rdn,
    random_iterated_rdn,
    random_reverse_delta,
    rdn_from_bit_order,
    shuffle_split_rdn,
    truncated_rdn,
)
from .shuffle import (
    iterated_rdn_from_shuffle_program,
    shuffle_based_network,
    shuffle_program_from_iterated_rdn,
    shuffle_program_from_split_rdn,
    split_rdn_from_shuffle_stages,
)
from .draw import render_network, render_stage_summary, to_dot
from . import serialize

__all__ = [
    "Gate",
    "Op",
    "comparator",
    "reverse_comparator",
    "exchange",
    "passthrough",
    "Level",
    "Stage",
    "ComparatorNetwork",
    "ComparisonRecord",
    "EvaluationTrace",
    "Permutation",
    "identity_permutation",
    "shuffle_permutation",
    "unshuffle_permutation",
    "bit_reversal_permutation",
    "bit_rotation_permutation",
    "xor_permutation",
    "reversal_permutation",
    "random_permutation",
    "transposition",
    "from_cycles",
    "RegisterProgram",
    "RegisterStep",
    "ReverseDeltaNetwork",
    "IteratedReverseDeltaNetwork",
    "rdn_from_bit_order",
    "butterfly_rdn",
    "shuffle_split_rdn",
    "empty_rdn",
    "truncated_rdn",
    "random_reverse_delta",
    "random_iterated_rdn",
    "bitonic_phase_rdn",
    "bitonic_iterated_rdn",
    "constant_op_chooser",
    "shuffle_based_network",
    "shuffle_program_from_split_rdn",
    "split_rdn_from_shuffle_stages",
    "iterated_rdn_from_shuffle_program",
    "shuffle_program_from_iterated_rdn",
    "render_network",
    "render_stage_summary",
    "to_dot",
    "serialize",
]
