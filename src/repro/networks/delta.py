"""Reverse delta networks and iterated reverse delta networks.

Definition 3.4 of the paper: a :math:`2^l`-input comparator network
:math:`\\Delta` is an *l-level reverse delta network* if

* ``l == 0`` and the network contains no comparator elements, or
* ``l > 0`` and :math:`\\Delta \\in (\\Delta_0 \\oplus \\Delta_1) \\otimes
  \\Gamma_l`, where :math:`\\Delta_0, \\Delta_1` are ``(l-1)``-level reverse
  delta networks on disjoint wire sets and the final level
  :math:`\\Gamma_l` contains at most :math:`2^{l-1}` elements, each taking
  one input from :math:`\\Delta_0` and one from :math:`\\Delta_1`.

Because parallel composition places no constraint on *which* wires go to
which subnetwork, and serial composition allows an arbitrary one-to-one
wire map, the split need not be into contiguous halves: this class
includes, e.g., the depth-:math:`\\lg n` shuffle-based network (whose
recursive split is by the *low* index bit) as well as the canonical
butterfly (split by the *high* bit).

A *(k, l)-iterated reverse delta network* is ``k`` consecutive ``l``-level
reverse delta networks with arbitrary fixed permutations in between.

Representation
--------------
:class:`ReverseDeltaNetwork` is a binary tree.  Each node owns a set of
global wire positions; its children partition that set, and its *final
level* is a list of gates each pairing a child-0 wire with a child-1 wire.
Evaluation is in place on global positions, so flattening the tree gives a
:class:`~repro.networks.network.ComparatorNetwork` whose level ``m``
(1-based) collects the final levels of all tree nodes of height ``m`` --
small blocks first, the root's level last, exactly the recursive order of
Definition 3.4.
"""

from __future__ import annotations

from functools import cached_property
from typing import Callable, Iterable, Iterator

from .._util import require_power_of_two
from ..errors import TopologyError, WireError
from .gates import Gate
from .level import Level
from .network import ComparatorNetwork, Stage
from .permutations import Permutation

__all__ = ["ReverseDeltaNetwork", "IteratedReverseDeltaNetwork"]


class ReverseDeltaNetwork:
    """A reverse delta network (Definition 3.4) as an explicit tree.

    Use the class methods :meth:`leaf` and :meth:`node` to construct;
    higher-level constructors (butterfly, random, bitonic blocks, ...)
    live in :mod:`repro.networks.builders`.
    """

    __slots__ = ("_wires", "_child0", "_child1", "_final", "_levels", "__dict__")

    def __init__(
        self,
        wires: tuple[int, ...],
        child0: "ReverseDeltaNetwork | None",
        child1: "ReverseDeltaNetwork | None",
        final: tuple[Gate, ...],
    ):
        self._wires = wires
        self._child0 = child0
        self._child1 = child1
        self._final = final
        if child0 is None:
            if child1 is not None or final:
                raise TopologyError("a leaf has no second child and no final level")
            if len(wires) != 1:
                raise TopologyError(f"a leaf owns exactly one wire, got {wires!r}")
            self._levels = 0
        else:
            assert child1 is not None
            w0, w1 = set(child0.wires), set(child1.wires)
            if w0 & w1:
                raise TopologyError("children must own disjoint wire sets")
            if w0 | w1 != set(wires):
                raise TopologyError("children must partition the node's wires")
            if len(w0) != len(w1):
                raise TopologyError(
                    f"children must be equal-sized, got {len(w0)} and {len(w1)}"
                )
            if child0.levels != child1.levels:
                raise TopologyError("children must have equal level counts")
            used: set[int] = set()
            for g in final:
                if g.a not in w0 or g.b not in w1:
                    raise TopologyError(
                        f"final-level gate {g} must pair a child-0 wire (first "
                        "endpoint) with a child-1 wire (second endpoint)"
                    )
                for w in g.wires:
                    if w in used:
                        raise TopologyError(
                            f"wire {w} used twice in one final level"
                        )
                    used.add(w)
            self._levels = child0.levels + 1

    # -- constructors --------------------------------------------------------
    @classmethod
    def leaf(cls, wire: int) -> "ReverseDeltaNetwork":
        """The 0-level reverse delta network: a single wire."""
        return cls((int(wire),), None, None, ())

    @classmethod
    def node(
        cls,
        child0: "ReverseDeltaNetwork",
        child1: "ReverseDeltaNetwork",
        final: Iterable[Gate] = (),
    ) -> "ReverseDeltaNetwork":
        """Combine two subnetworks with a final level of gates.

        Every gate must have its first endpoint in ``child0`` and its
        second in ``child1``; at most one gate per wire.
        """
        wires = tuple(sorted(child0.wires + child1.wires))
        return cls(wires, child0, child1, tuple(final))

    # -- structure -----------------------------------------------------------
    @property
    def wires(self) -> tuple[int, ...]:
        """The global wire positions this (sub)network owns."""
        return self._wires

    @property
    def n(self) -> int:
        """Number of wires (``2 ** levels``)."""
        return len(self._wires)

    @property
    def levels(self) -> int:
        """The parameter ``l`` of Definition 3.4."""
        return self._levels

    @property
    def is_leaf(self) -> bool:
        """True for the 0-level (single-wire) network."""
        return self._child0 is None

    @property
    def child0(self) -> "ReverseDeltaNetwork":
        """First subnetwork (raises on a leaf)."""
        if self._child0 is None:
            raise TopologyError("a leaf has no children")
        return self._child0

    @property
    def child1(self) -> "ReverseDeltaNetwork":
        """Second subnetwork (raises on a leaf)."""
        if self._child1 is None:
            raise TopologyError("a leaf has no children")
        return self._child1

    @property
    def final(self) -> tuple[Gate, ...]:
        """The gates of the node's final level :math:`\\Gamma_l`."""
        return self._final

    def __repr__(self) -> str:
        return f"ReverseDeltaNetwork(n={self.n}, levels={self.levels})"

    def nodes(self) -> Iterator["ReverseDeltaNetwork"]:
        """All tree nodes, children before parents (post-order)."""
        if not self.is_leaf:
            yield from self.child0.nodes()
            yield from self.child1.nodes()
        yield self

    @cached_property
    def size(self) -> int:
        """Total number of comparators in the (sub)network."""
        total = sum(1 for g in self._final if g.is_comparator)
        if not self.is_leaf:
            total += self.child0.size + self.child1.size
        return total

    # -- flattening ----------------------------------------------------------
    def levels_flat(self) -> list[Level]:
        """Global gate levels in execution order (heights ``1 .. levels``).

        Level ``m`` collects the final levels of every node of height
        ``m``; all such nodes own disjoint wires, so the union is a valid
        parallel level.
        """
        buckets: list[list[Gate]] = [[] for _ in range(self._levels)]

        def visit(node: "ReverseDeltaNetwork") -> None:
            if node.is_leaf:
                return
            visit(node.child0)
            visit(node.child1)
            buckets[node.levels - 1].extend(node.final)

        visit(self)
        return [Level(gates) for gates in buckets]

    def to_network(self, n: int | None = None) -> ComparatorNetwork:
        """Flatten to a :class:`ComparatorNetwork` on ``n`` global wires.

        ``n`` defaults to ``max(wires) + 1``; wires outside the tree are
        pass-through.  The network has exactly ``levels`` stages, some of
        which may be empty.
        """
        if n is None:
            n = max(self._wires) + 1
        if n <= max(self._wires, default=0):
            raise WireError(f"n={n} too small for wires up to {max(self._wires)}")
        return ComparatorNetwork(n, self.levels_flat())

    # -- convenience ----------------------------------------------------------
    def map_wires(self, mapping: Callable[[int], int]) -> "ReverseDeltaNetwork":
        """Relabel every wire through ``mapping`` (must stay injective)."""
        if self.is_leaf:
            return ReverseDeltaNetwork.leaf(mapping(self._wires[0]))
        c0 = self.child0.map_wires(mapping)
        c1 = self.child1.map_wires(mapping)
        final = tuple(Gate(mapping(g.a), mapping(g.b), g.op) for g in self._final)
        return ReverseDeltaNetwork.node(c0, c1, final)

    def with_final(self, final: Iterable[Gate]) -> "ReverseDeltaNetwork":
        """Replace the root's final level (children unchanged)."""
        return ReverseDeltaNetwork.node(self.child0, self.child1, tuple(final))

    def comparator_count_by_level(self) -> list[int]:
        """Comparators per flattened level (length ``levels``)."""
        return [lvl.comparator_count for lvl in self.levels_flat()]


class IteratedReverseDeltaNetwork:
    """A (k, l)-iterated reverse delta network.

    ``k`` consecutive ``l``-level reverse delta networks on the same ``n``
    wires, with an arbitrary fixed permutation allowed before each block
    (the paper's serial composition allows one between any two consecutive
    blocks; we also allow one before the first block, which is harmless --
    it just relabels inputs).
    """

    __slots__ = ("_n", "_blocks", "__dict__")

    def __init__(
        self,
        n: int,
        blocks: Iterable[tuple[Permutation | None, ReverseDeltaNetwork]],
    ):
        require_power_of_two(n, "iterated reverse delta size")
        blocks = tuple(blocks)
        lvl: int | None = None
        for perm, rdn in blocks:
            if set(rdn.wires) != set(range(n)):
                raise TopologyError(
                    f"every block must cover all {n} wires exactly once"
                )
            if perm is not None and perm.n != n:
                raise WireError("inter-block permutation has wrong size")
            if lvl is None:
                lvl = rdn.levels
            elif rdn.levels != lvl:
                raise TopologyError(
                    "all blocks of an iterated reverse delta network must "
                    f"have the same level count (got {rdn.levels} and {lvl})"
                )
        self._n = n
        self._blocks = blocks

    @property
    def n(self) -> int:
        """Number of wires."""
        return self._n

    @property
    def blocks(self) -> tuple[tuple[Permutation | None, ReverseDeltaNetwork], ...]:
        """The ``(inter-block permutation, block)`` pairs, in order."""
        return self._blocks

    @property
    def k(self) -> int:
        """Number of blocks (the paper's ``k``, ``d`` in Theorem 4.1)."""
        return len(self._blocks)

    @property
    def block_levels(self) -> int:
        """Levels per block (the paper's ``l``)."""
        return self._blocks[0][1].levels if self._blocks else 0

    @property
    def depth(self) -> int:
        """Total comparator-level depth ``k * l``."""
        return self.k * self.block_levels

    @cached_property
    def size(self) -> int:
        """Total number of comparators."""
        return sum(rdn.size for _, rdn in self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:
        return (
            f"IteratedReverseDeltaNetwork(n={self._n}, k={self.k}, "
            f"l={self.block_levels})"
        )

    def to_network(self) -> ComparatorNetwork:
        """Flatten to a single :class:`ComparatorNetwork`."""
        stages: list[Stage] = []
        for perm, rdn in self._blocks:
            block_levels = rdn.levels_flat()
            if perm is not None and not perm.is_identity:
                if block_levels:
                    stages.append(Stage(level=block_levels[0], perm=perm))
                    stages.extend(Stage(level=lvl) for lvl in block_levels[1:])
                else:
                    stages.append(Stage(level=Level(()), perm=perm))
            else:
                stages.extend(Stage(level=lvl) for lvl in block_levels)
        return ComparatorNetwork(self._n, stages)

    def truncated(self, k: int) -> "IteratedReverseDeltaNetwork":
        """The first ``k`` blocks."""
        return IteratedReverseDeltaNetwork(self._n, self._blocks[:k])

    def then_block(
        self, rdn: ReverseDeltaNetwork, perm: Permutation | None = None
    ) -> "IteratedReverseDeltaNetwork":
        """Append one more block (with an optional preceding permutation)."""
        return IteratedReverseDeltaNetwork(
            self._n, self._blocks + ((perm, rdn),)
        )
