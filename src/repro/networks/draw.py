"""ASCII rendering of comparator networks (Knuth-style diagrams).

Wires run left to right, one text row per wire; each stage occupies a
column group.  Comparators are drawn as vertical connectors:

* ``o``/``o`` with ``|`` between -- a ``+`` comparator (min to the lower
  wire index, drawn on top);
* ``^``/``v`` -- a ``-`` comparator (max to the first endpoint);
* ``x``/``x`` -- an exchange element;
* stage permutations are annotated below the diagram.

The renderer is intended for inspection and documentation of *small*
networks (n <= 32 or so); it is exact for any size but becomes unwieldy.
"""

from __future__ import annotations

from .gates import Op
from .network import ComparatorNetwork

__all__ = ["render_network", "render_stage_summary", "to_dot"]


_ENDPOINTS = {
    Op.PLUS: ("o", "o"),
    Op.MINUS: ("^", "v"),
    Op.SWAP: ("x", "x"),
    Op.NOP: (".", "."),
}


def render_network(net: ComparatorNetwork, wire_labels: bool = True) -> str:
    """Render a network as a multi-line ASCII diagram.

    Each stage becomes a three-character column; gates within a stage are
    drawn in the same column (they touch disjoint wires, so they never
    overlap except where their vertical spans cross, which is rendered
    with ``|`` pass-through).
    """
    n = net.n
    width = 3 * max(net.depth, 1)
    grid = [["-"] * width for _ in range(n)]
    notes: list[str] = []
    for si, stage in enumerate(net.stages):
        col = 3 * si + 1
        if stage.perm is not None and not stage.perm.is_identity:
            notes.append(f"stage {si}: permute by {stage.perm!r}")
        for g in stage.level:
            top, bot = (g.a, g.b) if g.a < g.b else (g.b, g.a)
            ca, cb = _ENDPOINTS[g.op]
            ctop, cbot = (ca, cb) if g.a < g.b else (cb, ca)
            grid[top][col] = ctop
            grid[bot][col] = cbot
            for w in range(top + 1, bot):
                grid[w][col] = "+" if grid[w][col] != "-" else "|"
    lines = []
    label_w = len(str(n - 1)) if wire_labels else 0
    for w in range(n):
        prefix = f"{w:>{label_w}} " if wire_labels else ""
        lines.append(prefix + "".join(grid[w]))
    lines.extend(notes)
    return "\n".join(lines)


def render_stage_summary(net: ComparatorNetwork) -> str:
    """One line per stage: comparator count and permutation flag."""
    rows = []
    for si, stage in enumerate(net.stages):
        perm = "-" if stage.perm is None or stage.perm.is_identity else "perm"
        rows.append(
            f"stage {si:>3}: {stage.comparator_count:>5} comparators, "
            f"{len(stage.level) - stage.comparator_count:>3} other, {perm}"
        )
    rows.append(f"total: depth={net.depth} size={net.size}")
    return "\n".join(rows)


def to_dot(net: ComparatorNetwork, name: str = "network") -> str:
    """Render the network as a Graphviz DOT digraph.

    Wires become horizontal chains of per-stage nodes; comparators are
    drawn as constrained edges between the two endpoints' nodes at their
    stage, labelled with the op (min-direction arrows for comparators,
    double arrows for exchanges).  Stage permutations appear as dashed
    routing edges.  Intended for ``dot -Tsvg``.
    """
    lines = [
        f"digraph {name} {{",
        "  rankdir=LR;",
        "  node [shape=point, width=0.06];",
        "  edge [arrowsize=0.5];",
    ]
    n = net.n
    depth = net.depth

    def node(w: int, s: int) -> str:
        return f"w{w}s{s}"

    for w in range(n):
        chain = " -> ".join(node(w, s) for s in range(depth + 1))
        lines.append("  { rank=same; }")
        lines.append(f"  {chain} [weight=10, color=gray];")
    for si, stage in enumerate(net.stages):
        if stage.perm is not None and not stage.perm.is_identity:
            for w in range(n):
                tgt = stage.perm(w)
                if tgt != w:
                    lines.append(
                        f"  {node(w, si)} -> {node(tgt, si)} "
                        "[style=dashed, color=steelblue, constraint=false];"
                    )
        for g in stage.level:
            if g.op is Op.PLUS:
                attrs = "color=black"
                src, dst = g.b, g.a  # arrow points to the min output
            elif g.op is Op.MINUS:
                attrs = "color=black"
                src, dst = g.a, g.b
            elif g.op is Op.SWAP:
                attrs = "color=firebrick, dir=both"
                src, dst = g.a, g.b
            else:
                attrs = "color=gray, style=dotted, dir=none"
                src, dst = g.a, g.b
            lines.append(
                f"  {node(src, si + 1)} -> {node(dst, si + 1)} "
                f"[{attrs}, constraint=false];"
            )
    lines.append("}")
    return "\n".join(lines)
