"""The paper's register model of a comparator network.

Section 1 defines a comparator network on ``n`` registers as a sequence of
pairs :math:`(\\Pi_i, \\vec{x}_i)`, where :math:`\\Pi_i` permutes the
register contents and :math:`\\vec{x}_i \\in \\{+, -, 0, 1\\}^{\\lfloor n/2
\\rfloor}` gives the operation applied to registers ``(2k, 2k+1)`` for each
``k``.  The two models (circuit and register) are equivalent; this module
provides the explicit representation plus the conversions realising that
equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import WireError
from .gates import Gate, Op
from .level import Level
from .network import ComparatorNetwork, Stage
from .permutations import Permutation, identity_permutation, shuffle_permutation

__all__ = ["RegisterStep", "RegisterProgram"]


@dataclass(frozen=True)
class RegisterStep:
    """One register-model step: a permutation and an op vector.

    ``ops[k]`` is applied to the register pair ``(2k, 2k+1)`` after the
    contents have been permuted by ``perm``.
    """

    perm: Permutation
    ops: tuple[Op, ...]

    def __post_init__(self) -> None:
        if not all(isinstance(o, Op) for o in self.ops):
            object.__setattr__(
                self,
                "ops",
                tuple(o if isinstance(o, Op) else Op.from_str(o) for o in self.ops),
            )
        elif not isinstance(self.ops, tuple):
            object.__setattr__(self, "ops", tuple(self.ops))
        if len(self.ops) != self.perm.n // 2:
            raise WireError(
                f"op vector has length {len(self.ops)}, expected {self.perm.n // 2}"
            )

    @property
    def n(self) -> int:
        """Number of registers."""
        return self.perm.n

    def to_stage(self) -> Stage:
        """The equivalent :class:`~repro.networks.network.Stage`.

        ``0`` (do-nothing) entries are dropped from the gate level; they
        are behaviourally identity and keeping them would only slow
        evaluation down.
        """
        gates = [
            Gate(2 * k, 2 * k + 1, op)
            for k, op in enumerate(self.ops)
            if op is not Op.NOP
        ]
        perm = None if self.perm.is_identity else self.perm
        return Stage(level=Level(gates), perm=perm)

    def ops_string(self) -> str:
        """Compact ``"+-01..."`` rendering of the op vector."""
        return "".join(op.value for op in self.ops)


class RegisterProgram:
    """A comparator network in explicit register-model form.

    Parameters
    ----------
    n:
        Number of registers (must be even for nontrivial op vectors).
    steps:
        The steps in execution order.
    """

    __slots__ = ("_n", "_steps")

    def __init__(self, n: int, steps: Iterable[RegisterStep] = ()):
        steps = tuple(steps)
        for s in steps:
            if s.n != n:
                raise WireError(
                    f"step acts on {s.n} registers, program declared {n}"
                )
        self._n = n
        self._steps = steps

    @property
    def n(self) -> int:
        """Number of registers."""
        return self._n

    @property
    def steps(self) -> tuple[RegisterStep, ...]:
        """The steps in execution order."""
        return self._steps

    @property
    def depth(self) -> int:
        """Number of steps (the paper's ``d``)."""
        return len(self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    def is_shuffle_based(self) -> bool:
        """True iff every step's permutation is the shuffle (Section 1).

        This is the defining property of the network class the paper's
        lower bound addresses.
        """
        if self._n == 1:
            return True
        shuffle = shuffle_permutation(self._n)
        return all(s.perm == shuffle for s in self._steps)

    def to_network(self) -> ComparatorNetwork:
        """Convert to the circuit-evaluable :class:`ComparatorNetwork`."""
        return ComparatorNetwork(self._n, [s.to_stage() for s in self._steps])

    # -- constructors --------------------------------------------------------
    @classmethod
    def shuffle_based(
        cls, n: int, op_vectors: Sequence[Sequence[Op | str]]
    ) -> "RegisterProgram":
        """A shuffle-based program from a sequence of op vectors.

        Every step uses the shuffle permutation; ``op_vectors[i][k]`` is
        the operation on registers ``(2k, 2k+1)`` at step ``i``.
        """
        shuffle = shuffle_permutation(n)
        steps = [
            RegisterStep(
                perm=shuffle,
                ops=tuple(
                    o if isinstance(o, Op) else Op.from_str(o) for o in ops
                ),
            )
            for ops in op_vectors
        ]
        return cls(n, steps)

    @classmethod
    def from_network(cls, network: ComparatorNetwork) -> "RegisterProgram":
        """Convert a circuit network into register-model form.

        Realises the classical equivalence of the two models: each stage
        becomes one step whose permutation routes every gate's endpoints
        onto an adjacent register pair ``(2k, 2k+1)``.  The inverse of
        that routing is prepended to the *next* step so the overall
        input/output function is preserved; a final restoring permutation
        is appended as an op-free step if needed.

        The resulting program has ``depth == network.depth`` (plus at most
        one trailing op-free step), matching the paper's remark that the
        conversion preserves size and depth.
        """
        n = network.n
        if n % 2 != 0:
            raise WireError("register model requires an even register count")
        import numpy as np

        steps: list[RegisterStep] = []
        # ``carry`` maps circuit position -> current register, accounting for
        # the data movement introduced by previous steps' pair routing.
        carry = identity_permutation(n)
        for stage in network.stages:
            if stage.perm is not None:
                carry = stage.perm.inverse().then(carry)
            # Route each gate's endpoints onto a fresh adjacent pair.
            mapping = np.full(n, -1, dtype=np.int64)
            ops: list[Op] = []
            for g in stage.level:
                k = len(ops)
                mapping[carry(g.a)] = 2 * k
                mapping[carry(g.b)] = 2 * k + 1
                ops.append(g.op)
            next_free = 2 * len(ops)
            for reg in range(n):
                if mapping[reg] < 0:
                    mapping[reg] = next_free
                    next_free += 1
            while len(ops) < n // 2:
                ops.append(Op.NOP)
            route = Permutation(mapping)
            steps.append(RegisterStep(perm=route, ops=tuple(ops)))
            # After routing, circuit position p sits at register
            # route(carry(p)); fold that into carry for the next stage.
            carry = carry.then(route)
        if not carry.is_identity:
            # Restore the original wire order with one op-free step.
            steps.append(
                RegisterStep(
                    perm=carry.inverse(), ops=tuple([Op.NOP] * (n // 2))
                )
            )
        return cls(n, steps)
