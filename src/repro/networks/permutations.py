"""Permutations of wire positions, including the shuffle permutation.

The paper's register model (Section 1) interleaves comparator levels with
fixed permutations :math:`\\Pi_i` of the registers.  This module provides a
small permutation algebra used throughout the library, with the shuffle
permutation :math:`\\pi` of the paper as the headline instance:

    If :math:`j_{d-1} \\cdots j_0` is the binary representation of
    :math:`j`, then :math:`\\pi(j)` has binary representation
    :math:`j_{d-2} \\cdots j_0 j_{d-1}` (rotate-left of the index bits).

Conventions
-----------
A :class:`Permutation` ``P`` maps *positions*: the value stored at register
``j`` before the permutation is stored at register ``P(j)`` afterwards.
Hence for a value vector ``v``, the permuted vector ``w`` satisfies
``w[P(j)] == v[j]``, which is what :meth:`Permutation.apply` computes.

Composition ``P.then(Q)`` is "first P, then Q", i.e. the permutation
``j -> Q(P(j))``.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from .._util import (
    as_int_array,
    bit_reverse_int,
    check_permutation_array,
    ilog2,
    require_power_of_two,
    rotate_left,
)
from ..errors import WireError

__all__ = [
    "Permutation",
    "identity_permutation",
    "shuffle_permutation",
    "unshuffle_permutation",
    "bit_reversal_permutation",
    "bit_rotation_permutation",
    "xor_permutation",
    "random_permutation",
    "reversal_permutation",
    "transposition",
    "from_cycles",
]


class Permutation:
    """An immutable permutation of ``range(n)`` acting on wire positions.

    Parameters
    ----------
    mapping:
        Sequence with ``mapping[j]`` = image of position ``j``.  Must be a
        bijection on ``range(len(mapping))``.
    """

    __slots__ = ("_mapping", "_inverse", "__dict__")

    def __init__(self, mapping: Sequence[int] | np.ndarray):
        arr = as_int_array(mapping)
        check_permutation_array(arr, arr.shape[0])
        arr.setflags(write=False)
        self._mapping = arr
        self._inverse: np.ndarray | None = None

    # -- basic protocol ----------------------------------------------------
    @property
    def n(self) -> int:
        """Number of positions the permutation acts on."""
        return int(self._mapping.shape[0])

    @property
    def mapping(self) -> np.ndarray:
        """Read-only array with ``mapping[j]`` = image of ``j``."""
        return self._mapping

    def __len__(self) -> int:
        return self.n

    def __call__(self, j: int) -> int:
        """Image of position ``j``."""
        return int(self._mapping[j])

    def __iter__(self) -> Iterator[int]:
        return iter(int(x) for x in self._mapping)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return self.n == other.n and bool(
            np.array_equal(self._mapping, other._mapping)
        )

    def __hash__(self) -> int:
        return hash((self.n, self._mapping.tobytes()))

    def __repr__(self) -> str:
        if self.n <= 16:
            return f"Permutation({list(map(int, self._mapping))})"
        return f"Permutation(n={self.n})"

    # -- algebra -----------------------------------------------------------
    def inverse(self) -> "Permutation":
        """The inverse permutation."""
        inv = np.empty(self.n, dtype=np.int64)
        inv[self._mapping] = np.arange(self.n, dtype=np.int64)
        return Permutation(inv)

    def then(self, other: "Permutation") -> "Permutation":
        """Composition "self first, then other": ``j -> other(self(j))``."""
        if other.n != self.n:
            raise WireError(
                f"cannot compose permutations of sizes {self.n} and {other.n}"
            )
        return Permutation(other._mapping[self._mapping])

    def power(self, k: int) -> "Permutation":
        """The ``k``-th power (``k`` may be negative or zero)."""
        if k < 0:
            return self.inverse().power(-k)
        result = identity_permutation(self.n)
        base = self
        while k:
            if k & 1:
                result = result.then(base)
            base = base.then(base)
            k >>= 1
        return result

    # -- action ------------------------------------------------------------
    def apply(self, values: np.ndarray) -> np.ndarray:
        """Permute a value vector (or a batch of row vectors).

        For a 1-D vector ``v`` returns ``w`` with ``w[mapping[j]] = v[j]``.
        For a 2-D batch of shape ``(batch, n)`` the action is applied to
        every row.
        """
        values = np.asarray(values)
        out = np.empty_like(values)
        if values.ndim == 1:
            if values.shape[0] != self.n:
                raise WireError(
                    f"value vector has length {values.shape[0]}, expected {self.n}"
                )
            out[self._mapping] = values
        elif values.ndim == 2:
            if values.shape[1] != self.n:
                raise WireError(
                    f"batch has row length {values.shape[1]}, expected {self.n}"
                )
            out[:, self._mapping] = values
        else:
            raise WireError(f"expected 1-D or 2-D array, got ndim={values.ndim}")
        return out

    def apply_positions(self, positions: Iterable[int]) -> list[int]:
        """Map a collection of positions through the permutation."""
        return [int(self._mapping[p]) for p in positions]

    # -- properties --------------------------------------------------------
    @cached_property
    def is_identity(self) -> bool:
        """True iff this is the identity permutation."""
        return bool(np.array_equal(self._mapping, np.arange(self.n)))

    def cycles(self) -> list[tuple[int, ...]]:
        """Cycle decomposition (cycles of length >= 2, each min-rotated)."""
        seen = np.zeros(self.n, dtype=bool)
        out: list[tuple[int, ...]] = []
        for start in range(self.n):
            if seen[start]:
                continue
            cyc = [start]
            seen[start] = True
            j = int(self._mapping[start])
            while j != start:
                cyc.append(j)
                seen[j] = True
                j = int(self._mapping[j])
            if len(cyc) > 1:
                out.append(tuple(cyc))
        return out

    def order(self) -> int:
        """Multiplicative order of the permutation."""
        import math

        result = 1
        for cyc in self.cycles():
            result = math.lcm(result, len(cyc))
        return result

    def fixed_points(self) -> list[int]:
        """Positions mapped to themselves."""
        return [int(j) for j in np.nonzero(self._mapping == np.arange(self.n))[0]]


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

def identity_permutation(n: int) -> Permutation:
    """The identity on ``range(n)``."""
    return Permutation(np.arange(n, dtype=np.int64))


def shuffle_permutation(n: int) -> Permutation:
    """The paper's shuffle permutation :math:`\\pi` on ``n = 2**d`` wires.

    ``pi(j)`` rotates the ``d`` index bits of ``j`` left by one, so the
    value at register ``j = j_{d-1} ... j_0`` moves to register
    ``j_{d-2} ... j_0 j_{d-1}``.  This is the "perfect shuffle": the first
    half of the deck interleaves with the second half.
    """
    d = ilog2(require_power_of_two(n, "shuffle size"))
    if d == 0:
        return identity_permutation(1)
    mapping = np.fromiter(
        (rotate_left(j, d, 1) for j in range(n)), dtype=np.int64, count=n
    )
    return Permutation(mapping)


def unshuffle_permutation(n: int) -> Permutation:
    """The inverse shuffle :math:`\\pi^{-1}` (rotate index bits right)."""
    return shuffle_permutation(n).inverse()


def bit_reversal_permutation(n: int) -> Permutation:
    """Bit-reversal of the index bits (an involution)."""
    d = ilog2(require_power_of_two(n, "bit-reversal size"))
    mapping = np.fromiter(
        (bit_reverse_int(j, d) for j in range(n)), dtype=np.int64, count=n
    )
    return Permutation(mapping)


def bit_rotation_permutation(n: int, amount: int) -> Permutation:
    """Rotate index bits left by ``amount`` (``shuffle**amount``)."""
    d = ilog2(require_power_of_two(n, "bit-rotation size"))
    if d == 0:
        return identity_permutation(1)
    mapping = np.fromiter(
        (rotate_left(j, d, amount) for j in range(n)), dtype=np.int64, count=n
    )
    return Permutation(mapping)


def xor_permutation(n: int, mask: int) -> Permutation:
    """The involution ``j -> j XOR mask`` (e.g. the exchange ``mask=1``)."""
    require_power_of_two(n, "xor-permutation size")
    if not 0 <= mask < n:
        raise WireError(f"mask {mask} out of range [0, {n})")
    mapping = np.arange(n, dtype=np.int64) ^ mask
    return Permutation(mapping)


def reversal_permutation(n: int) -> Permutation:
    """The full reversal ``j -> n - 1 - j``."""
    return Permutation(np.arange(n - 1, -1, -1, dtype=np.int64))


def random_permutation(n: int, rng: np.random.Generator) -> Permutation:
    """A uniformly random permutation drawn from ``rng``."""
    return Permutation(rng.permutation(n).astype(np.int64))


def transposition(n: int, a: int, b: int) -> Permutation:
    """The transposition swapping positions ``a`` and ``b``."""
    mapping = np.arange(n, dtype=np.int64)
    mapping[a], mapping[b] = mapping[b], mapping[a]
    return Permutation(mapping)


def from_cycles(n: int, cycles: Iterable[Sequence[int]]) -> Permutation:
    """Build a permutation from disjoint cycles.

    Each cycle ``(c0, c1, ..., ck)`` sends ``c0 -> c1 -> ... -> ck -> c0``.
    """
    mapping = np.arange(n, dtype=np.int64)
    used: set[int] = set()
    for cyc in cycles:
        for x in cyc:
            if x in used:
                raise WireError(f"position {x} appears in two cycles")
            used.add(int(x))
        for a, b in zip(cyc, list(cyc[1:]) + [cyc[0]]):
            mapping[a] = b
    return Permutation(mapping)
