"""Constructors for reverse delta networks and iterated compositions.

The generic builder :func:`rdn_from_bit_order` constructs a reverse delta
network whose recursive split follows a chosen ordering of the index bits:

* ``bit_order[0]`` is the bit the *root's* final level pairs across (the
  last level executed);
* ``bit_order[r]`` is the bit used by nodes at tree depth ``r``.

Two special cases matter for the paper:

* the **canonical butterfly** uses ``bit_order = [d-1, ..., 1, 0]``
  (contiguous halves; stride doubles level by level); and
* the **shuffle split** uses ``bit_order = [0, 1, ..., d-1]``, which is
  exactly the structure of a depth-``d`` shuffle-based network: the first
  executed level compares registers differing in bit ``d-1`` and the last
  compares bit ``0``, so bit 0 is untouched until the final level and the
  even/odd wires form the two subnetworks of Definition 3.4.

Both are reverse delta networks; they differ only by the bit-reversal
relabelling of the wires.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .._util import ilog2, require_power_of_two
from ..errors import TopologyError, WireError
from .delta import IteratedReverseDeltaNetwork, ReverseDeltaNetwork
from .gates import Gate, Op
from .permutations import Permutation, random_permutation

__all__ = [
    "OpChooser",
    "rdn_from_bit_order",
    "butterfly_rdn",
    "shuffle_split_rdn",
    "random_reverse_delta",
    "random_iterated_rdn",
    "bitonic_phase_rdn",
    "bitonic_iterated_rdn",
    "truncated_rdn",
    "empty_rdn",
    "constant_op_chooser",
]

#: Decides the gate for a final-level pair.  Called with ``(height, bit,
#: low_wire)`` where ``height`` is the tree height of the node (root =
#: total levels), ``bit`` the index bit the pair differs in, and
#: ``low_wire`` the pair's wire with that bit clear.  Return ``None`` for
#: no gate.
OpChooser = Callable[[int, int, int], "Op | None"]


def constant_op_chooser(op: Op | str | None) -> OpChooser:
    """An :data:`OpChooser` returning the same op for every pair."""
    resolved = None if op is None else (op if isinstance(op, Op) else Op.from_str(op))

    def choose(height: int, bit: int, low_wire: int) -> Op | None:
        return resolved

    return choose


def rdn_from_bit_order(
    n: int,
    bit_order: Sequence[int],
    op_chooser: OpChooser,
    wires: Sequence[int] | None = None,
) -> ReverseDeltaNetwork:
    """Build a reverse delta network splitting by the given bit order.

    Parameters
    ----------
    n:
        Number of wires, a power of two ``2**d``.
    bit_order:
        A permutation of ``range(d)``; ``bit_order[r]`` is the bit paired
        at tree depth ``r`` (so ``bit_order[0]`` belongs to the root and is
        executed *last*).
    op_chooser:
        Gate chooser; see :data:`OpChooser`.
    wires:
        Optional explicit global wire labels (default ``range(n)``); the
        bit structure refers to positions within this sequence.
    """
    d = ilog2(require_power_of_two(n, "network size"))
    if sorted(bit_order) != list(range(d)):
        raise TopologyError(
            f"bit_order must be a permutation of range({d}), got {bit_order!r}"
        )
    labels = list(range(n)) if wires is None else list(wires)
    if len(labels) != n or len(set(labels)) != n:
        raise WireError("wires must be n distinct labels")

    def build(indices: list[int], depth: int) -> ReverseDeltaNetwork:
        if len(indices) == 1:
            return ReverseDeltaNetwork.leaf(labels[indices[0]])
        bit = bit_order[depth]
        mask = 1 << bit
        lows = [i for i in indices if not i & mask]
        highs = [i for i in indices if i & mask]
        c0 = build(lows, depth + 1)
        c1 = build(highs, depth + 1)
        height = d - depth
        final = []
        for i in lows:
            op = op_chooser(height, bit, labels[i])
            if op is not None:
                final.append(Gate(labels[i], labels[i | mask], op))
        return ReverseDeltaNetwork.node(c0, c1, tuple(final))

    return build(list(range(n)), 0)


def butterfly_rdn(
    n: int, op_chooser: OpChooser | Op | str = Op.PLUS
) -> ReverseDeltaNetwork:
    """The canonical butterfly: contiguous halves, stride ``1, 2, ..., n/2``.

    With a constant ``+`` chooser this is the classical "ascending
    comparator butterfly"; pass an :data:`OpChooser` for per-pair control.
    """
    if not callable(op_chooser):
        op_chooser = constant_op_chooser(op_chooser)
    d = ilog2(require_power_of_two(n, "butterfly size"))
    return rdn_from_bit_order(n, list(range(d - 1, -1, -1)), op_chooser)


def shuffle_split_rdn(
    n: int, op_chooser: OpChooser | Op | str = Op.PLUS
) -> ReverseDeltaNetwork:
    """The reverse delta structure of a depth-``d`` shuffle-based block.

    Executed level ``t`` (0-based) pairs registers differing in bit
    ``d - 1 - t``; the recursive split is by the *low* bit.  This is the
    bit-reversal relabelling of :func:`butterfly_rdn`.
    """
    if not callable(op_chooser):
        op_chooser = constant_op_chooser(op_chooser)
    d = ilog2(require_power_of_two(n, "network size"))
    return rdn_from_bit_order(n, list(range(d)), op_chooser)


def empty_rdn(n: int) -> ReverseDeltaNetwork:
    """An ``lg n``-level reverse delta network with no gates at all."""
    return butterfly_rdn(n, constant_op_chooser(None))


def truncated_rdn(
    rdn: ReverseDeltaNetwork, populated_levels: int
) -> ReverseDeltaNetwork:
    """Keep gates only in the first ``populated_levels`` executed levels.

    Executed level ``m`` corresponds to tree height ``m``; gates at
    heights above ``populated_levels`` are removed.  This realises the
    Section 5 extension in which an arbitrary permutation is allowed every
    ``f(n)`` stages: a block with only its first ``f`` levels populated is
    a forest of :math:`2^f`-wire reverse delta networks embedded in a full
    ``lg n``-level one.
    """

    def strip(node: ReverseDeltaNetwork) -> ReverseDeltaNetwork:
        if node.is_leaf:
            return node
        c0 = strip(node.child0)
        c1 = strip(node.child1)
        final = node.final if node.levels <= populated_levels else ()
        return ReverseDeltaNetwork.node(c0, c1, final)

    return strip(rdn)


def random_reverse_delta(
    n: int,
    rng: np.random.Generator,
    *,
    p_gate: float = 1.0,
    p_minus: float = 0.5,
    p_exchange: float = 0.0,
    shuffle_pairing: bool = True,
) -> ReverseDeltaNetwork:
    """A random reverse delta network.

    At each node, child-0 outputs are matched to child-1 outputs by a
    random bijection (if ``shuffle_pairing``) or positionally; each matched
    pair independently receives a gate with probability ``p_gate``, which
    is an exchange with probability ``p_exchange`` and otherwise a ``-``
    comparator with probability ``p_minus`` (``+`` else).

    This samples from the *full* class of Definition 3.4, exercising the
    arbitrary wire maps that serial composition permits.
    """
    require_power_of_two(n, "network size")

    def build(wires: list[int]) -> ReverseDeltaNetwork:
        if len(wires) == 1:
            return ReverseDeltaNetwork.leaf(int(wires[0]))
        half = len(wires) // 2
        wires = [int(w) for w in wires]
        if shuffle_pairing:
            rng.shuffle(wires)
        lows, highs = wires[:half], wires[half:]
        c0 = build(sorted(lows))
        c1 = build(sorted(highs))
        if shuffle_pairing:
            lows = list(rng.permutation(lows))
            highs = list(rng.permutation(highs))
        final = []
        for a, b in zip(lows, highs):
            if rng.random() >= p_gate:
                continue
            if rng.random() < p_exchange:
                op = Op.SWAP
            elif rng.random() < p_minus:
                op = Op.MINUS
            else:
                op = Op.PLUS
            final.append(Gate(int(a), int(b), op))
        return ReverseDeltaNetwork.node(c0, c1, tuple(final))

    return build(list(range(n)))


def random_iterated_rdn(
    n: int,
    k: int,
    rng: np.random.Generator,
    *,
    random_inter_perms: bool = True,
    p_gate: float = 1.0,
    p_minus: float = 0.5,
    p_exchange: float = 0.0,
) -> IteratedReverseDeltaNetwork:
    """A random (k, lg n)-iterated reverse delta network."""
    blocks = []
    for _ in range(k):
        perm: Permutation | None = (
            random_permutation(n, rng) if random_inter_perms else None
        )
        rdn = random_reverse_delta(
            n, rng, p_gate=p_gate, p_minus=p_minus, p_exchange=p_exchange
        )
        blocks.append((perm, rdn))
    return IteratedReverseDeltaNetwork(n, blocks)


def bitonic_phase_rdn(n: int, phase: int) -> ReverseDeltaNetwork:
    """Phase ``p`` (1-based) of Batcher's bitonic sorter as an RDN block.

    Phase ``p`` merges bitonic runs of length :math:`2^p`: its executed
    stages compare strides :math:`2^{p-1}, \\ldots, 2, 1` in that order,
    with direction chosen by bit ``p`` of the pair's low index (``+`` if
    clear, ``-`` if set; for the final phase ``p == d`` the bit is always
    clear, giving a fully ascending merge).

    Because the last executed stage pairs bit 0 and stage ``s`` preserves
    all bits below ``s``, each phase is an ``lg n``-level reverse delta
    network whose first ``lg n - p`` executed levels are empty --
    certifying that the full bitonic sorter is a (lg n, lg n)-iterated
    reverse delta network (with identity inter-block permutations), i.e.
    that it lies in the class the paper's lower bound addresses.
    """
    d = ilog2(require_power_of_two(n, "bitonic size"))
    if not 1 <= phase <= d:
        raise TopologyError(f"phase must be in [1, {d}], got {phase}")
    # Root pairs bit 0, depth r pairs bit r for r < phase; the remaining
    # (empty) structure uses the leftover bits in ascending order.
    bit_order = list(range(phase)) + list(range(phase, d))
    block_mask = 1 << phase

    def choose(height: int, bit: int, low_wire: int) -> Op | None:
        if bit >= phase:
            return None  # empty padding levels
        return Op.MINUS if low_wire & block_mask else Op.PLUS

    return rdn_from_bit_order(n, bit_order, choose)


def bitonic_iterated_rdn(n: int) -> IteratedReverseDeltaNetwork:
    """Batcher's bitonic sorting network as a (lg n, lg n)-iterated RDN.

    Sorts ascending.  Depth ``lg n`` blocks of ``lg n`` levels each (many
    empty), i.e. :math:`\\lg^2 n` stages of which
    :math:`\\lg n (\\lg n + 1)/2` contain comparators -- the
    :math:`\\Theta(\\lg^2 n)` upper bound the paper cites.
    """
    d = ilog2(require_power_of_two(n, "bitonic size"))
    blocks = [(None, bitonic_phase_rdn(n, p)) for p in range(1, d + 1)]
    return IteratedReverseDeltaNetwork(n, blocks)
