"""The comparator-network model: stages of (permutation, gate level).

The paper uses two equivalent models of a comparator network (Section 1):

* the *circuit model* -- an acyclic circuit of two-input comparator
  elements; and
* the *register model* -- ``n`` registers transformed in ``d`` steps, where
  step ``i`` first permutes the register contents by :math:`\\Pi_i` and
  then applies the per-pair operations :math:`\\vec{x}_i`.

:class:`ComparatorNetwork` realises both at once: it is a sequence of
:class:`Stage` objects, each an optional wire permutation followed by one
parallel :class:`~repro.networks.level.Level` of gates.  A pure circuit
network has identity (``None``) permutations everywhere; a *shuffle-based*
network has the shuffle permutation in front of every level.

Evaluation is in-place on wire *positions*: the output wire ``j`` of the
network is simply position ``j`` after the last stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from .._util import as_int_array
from ..errors import WireError
from .gates import Gate
from .level import Level
from .permutations import Permutation

__all__ = ["Stage", "ComparisonRecord", "EvaluationTrace", "ComparatorNetwork"]


@dataclass(frozen=True)
class Stage:
    """One step of the register model: permute, then apply a gate level.

    ``perm is None`` means the identity permutation (no data movement).
    """

    level: Level
    perm: Permutation | None = None

    def validate(self, n: int) -> None:
        """Check the stage fits an ``n``-wire network."""
        self.level.validate(n)
        if self.perm is not None and self.perm.n != n:
            raise WireError(
                f"stage permutation acts on {self.perm.n} wires, network has {n}"
            )

    @property
    def comparator_count(self) -> int:
        """Number of comparators in the stage's level."""
        return self.level.comparator_count


@dataclass(frozen=True)
class ComparisonRecord:
    """One comparison performed during a traced evaluation.

    Attributes
    ----------
    stage:
        Index of the stage in which the comparison happened.
    positions:
        The wire-position pair ``(a, b)`` of the gate.
    values:
        The pair of *values* that met at the gate, in ``(a, b)`` order
        (before the gate fires).
    """

    stage: int
    positions: tuple[int, int]
    values: tuple[int, int]

    @property
    def value_pair(self) -> frozenset[int]:
        """The unordered pair of compared values."""
        return frozenset(self.values)


@dataclass
class EvaluationTrace:
    """Result of a traced evaluation: output plus every comparison made."""

    input: np.ndarray
    output: np.ndarray
    comparisons: list[ComparisonRecord] = field(default_factory=list)

    @cached_property
    def compared_value_pairs(self) -> frozenset[frozenset[int]]:
        """The set of unordered value pairs that were compared."""
        return frozenset(rec.value_pair for rec in self.comparisons)

    def were_compared(self, u: int, v: int) -> bool:
        """True iff values ``u`` and ``v`` met at a comparator gate."""
        return frozenset((u, v)) in self.compared_value_pairs


class ComparatorNetwork:
    """An immutable comparator network on ``n`` wires.

    Parameters
    ----------
    n:
        Number of wires.
    stages:
        The stages, executed in order.  Each may be a :class:`Stage`, a
        :class:`Level` (identity permutation), or an iterable of
        :class:`Gate` (identity permutation).
    """

    __slots__ = ("_n", "_stages", "__dict__")

    def __init__(self, n: int, stages: Iterable[Stage | Level | Iterable[Gate]] = ()):
        if n < 1:
            raise WireError(f"network must have at least one wire, got n={n}")
        norm: list[Stage] = []
        for s in stages:
            if isinstance(s, Stage):
                stage = s
            elif isinstance(s, Level):
                stage = Stage(level=s)
            else:
                stage = Stage(level=Level(s))
            stage.validate(n)
            norm.append(stage)
        self._n = n
        self._stages = tuple(norm)

    # -- protocol ------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of wires."""
        return self._n

    @property
    def stages(self) -> tuple[Stage, ...]:
        """The stages in execution order."""
        return self._stages

    @property
    def depth(self) -> int:
        """Number of stages (the paper's ``d``)."""
        return len(self._stages)

    @cached_property
    def comparator_depth(self) -> int:
        """Number of stages containing at least one true comparator."""
        return sum(1 for s in self._stages if s.comparator_count > 0)

    @cached_property
    def size(self) -> int:
        """Total number of comparators (``+``/``-`` gates)."""
        return sum(s.comparator_count for s in self._stages)

    @cached_property
    def element_count(self) -> int:
        """Total number of circuit elements of any kind."""
        return sum(len(s.level) for s in self._stages)

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._stages)

    def __len__(self) -> int:
        return len(self._stages)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComparatorNetwork):
            return NotImplemented
        return self._n == other._n and self._stages == other._stages

    def __hash__(self) -> int:
        return hash((self._n, self._stages))

    def __repr__(self) -> str:
        return (
            f"ComparatorNetwork(n={self._n}, depth={self.depth}, "
            f"size={self.size})"
        )

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, values: Sequence[int] | np.ndarray) -> np.ndarray:
        """Run a single input vector through the network.

        Returns a fresh array; the input is not modified.
        """
        x = as_int_array(values)
        if x.shape[0] != self._n:
            raise WireError(f"input has length {x.shape[0]}, expected {self._n}")
        for stage in self._stages:
            if stage.perm is not None:
                x = stage.perm.apply(x)
            stage.level.apply_inplace(x)
        return x

    def evaluate_batch(self, batch: np.ndarray) -> np.ndarray:
        """Run a ``(batch, n)`` array of inputs through the network.

        Rows are independent inputs; vectorised over the batch axis so the
        per-row cost is a handful of NumPy fancy-indexing operations per
        stage.  Returns a fresh array.
        """
        x = np.array(batch, dtype=np.int64, copy=True)
        if x.ndim != 2 or x.shape[1] != self._n:
            raise WireError(
                f"batch must have shape (batch, {self._n}), got {x.shape}"
            )
        for stage in self._stages:
            if stage.perm is not None:
                x = stage.perm.apply(x)
            stage.level.apply_inplace(x)
        return x

    def trace(self, values: Sequence[int] | np.ndarray) -> EvaluationTrace:
        """Evaluate one input, recording every comparison performed.

        Only true comparators (``+``/``-``) produce
        :class:`ComparisonRecord` entries; ``0``/``1`` elements do not
        compare (Definition 3.6).
        """
        x = as_int_array(values)
        if x.shape[0] != self._n:
            raise WireError(f"input has length {x.shape[0]}, expected {self._n}")
        trace = EvaluationTrace(input=x.copy(), output=x)
        for si, stage in enumerate(self._stages):
            if stage.perm is not None:
                x = stage.perm.apply(x)
            for g in stage.level:
                va, vb = int(x[g.a]), int(x[g.b])
                if g.is_comparator:
                    trace.comparisons.append(
                        ComparisonRecord(
                            stage=si, positions=(g.a, g.b), values=(va, vb)
                        )
                    )
                x[g.a], x[g.b] = g.apply_scalar(va, vb)
        trace.output = x
        return trace

    # -- composition -------------------------------------------------------
    def then(
        self, other: "ComparatorNetwork", inter: Permutation | None = None
    ) -> "ComparatorNetwork":
        """Serial composition ``self ⊗ other`` with an optional wire map.

        The paper's serial composition allows an arbitrary one-to-one map
        from the first network's outputs to the second's inputs; ``inter``
        is that map (output position ``j`` of ``self`` feeds input position
        ``inter(j)`` of ``other``).
        """
        if other.n != self._n:
            raise WireError(
                f"cannot compose networks on {self._n} and {other.n} wires"
            )
        if inter is not None and inter.n != self._n:
            raise WireError("inter-network permutation has wrong size")
        tail = list(other.stages)
        if inter is not None and not inter.is_identity:
            if tail:
                first = tail[0]
                combined = (
                    inter if first.perm is None else inter.then(first.perm)
                )
                tail[0] = Stage(level=first.level, perm=combined)
            else:
                tail = [Stage(level=Level(()), perm=inter)]
        return ComparatorNetwork(self._n, list(self._stages) + tail)

    def truncated(self, depth: int) -> "ComparatorNetwork":
        """The prefix consisting of the first ``depth`` stages."""
        if depth < 0:
            raise WireError(f"depth must be nonnegative, got {depth}")
        return ComparatorNetwork(self._n, self._stages[:depth])

    def with_prefix_permutation(self, perm: Permutation) -> "ComparatorNetwork":
        """Prepend a data-movement permutation before the first stage."""
        if perm.n != self._n:
            raise WireError("prefix permutation has wrong size")
        if perm.is_identity:
            return self
        if self._stages:
            first = self._stages[0]
            combined = perm if first.perm is None else perm.then(first.perm)
            rest = (Stage(level=first.level, perm=combined),) + self._stages[1:]
            return ComparatorNetwork(self._n, rest)
        return ComparatorNetwork(self._n, [Stage(level=Level(()), perm=perm)])

    # -- analysis helpers ----------------------------------------------------
    def gates_by_stage(self) -> list[tuple[Gate, ...]]:
        """Gate tuples per stage, in order."""
        return [s.level.gates for s in self._stages]

    def all_gates(self) -> list[tuple[int, Gate]]:
        """All gates as ``(stage_index, gate)`` pairs."""
        return [(i, g) for i, s in enumerate(self._stages) for g in s.level]

    def is_pure_circuit(self) -> bool:
        """True iff no stage carries a (non-identity) permutation."""
        return all(s.perm is None or s.perm.is_identity for s in self._stages)

    def flattened(self) -> "ComparatorNetwork":
        """Equivalent pure-circuit network (permutations folded into wires).

        Stage permutations are eliminated by relabelling gate endpoints:
        a gate at position ``p`` of stage ``i`` acts on the wire that is
        at position ``p`` after the composition of the first ``i`` stage
        permutations, so in the flattened network the gate endpoint is the
        preimage of ``p`` under that composition.  The flattened network
        computes the same *multiset* routing up to the final residual
        permutation, which is appended as an explicit last stage so the
        input/output function is preserved exactly.
        """
        cur = None  # composition of permutations applied so far
        out_stages: list[Stage] = []
        for stage in self._stages:
            if stage.perm is not None:
                cur = stage.perm if cur is None else cur.then(stage.perm)
            if cur is None:
                out_stages.append(Stage(level=stage.level))
            else:
                inv = cur.inverse()
                gates = [
                    Gate(inv(g.a), inv(g.b), g.op) for g in stage.level
                ]
                out_stages.append(Stage(level=Level(gates)))
        net = ComparatorNetwork(self._n, out_stages)
        if cur is not None and not cur.is_identity:
            net = ComparatorNetwork(
                self._n, list(net.stages) + [Stage(level=Level(()), perm=cur)]
            )
        return net
