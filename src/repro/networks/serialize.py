"""JSON (de)serialisation of networks, programs and topologies.

The on-disk format is a plain JSON document so networks can be exchanged
with other tools, archived next to experiment results, or diffed.  All
``to_json`` functions return JSON-compatible dicts; ``dumps``/``loads``
wrap them with version tagging.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import ReproError, WireError
from .delta import IteratedReverseDeltaNetwork, ReverseDeltaNetwork
from .gates import Gate, Op
from .level import Level
from .network import ComparatorNetwork, Stage
from .permutations import Permutation
from .registers import RegisterProgram, RegisterStep

__all__ = [
    "gate_to_json",
    "gate_from_json",
    "network_to_json",
    "network_from_json",
    "rdn_to_json",
    "rdn_from_json",
    "iterated_to_json",
    "iterated_from_json",
    "program_to_json",
    "program_from_json",
    "payload_of",
    "from_payload",
    "dumps",
    "loads",
]

FORMAT_VERSION = 1


def gate_to_json(g: Gate) -> list[Any]:
    """Serialise one gate as the ``[a, b, op]`` triple."""
    return [g.a, g.b, g.op.value]


def gate_from_json(item: list[Any]) -> Gate:
    """Deserialise one ``[a, b, op]`` triple."""
    a, b, op = item
    return Gate(int(a), int(b), Op.from_str(op))


# backwards-compatible private aliases
_gate_to_json = gate_to_json
_gate_from_json = gate_from_json


def network_to_json(net: ComparatorNetwork) -> dict[str, Any]:
    """Serialise a :class:`ComparatorNetwork`."""
    stages = []
    for s in net.stages:
        entry: dict[str, Any] = {"gates": [_gate_to_json(g) for g in s.level]}
        if s.perm is not None:
            entry["perm"] = [int(x) for x in s.perm.mapping]
        stages.append(entry)
    return {"kind": "network", "n": net.n, "stages": stages}


def network_from_json(doc: dict[str, Any]) -> ComparatorNetwork:
    """Deserialise a :class:`ComparatorNetwork`."""
    if doc.get("kind") != "network":
        raise WireError(f"expected kind 'network', got {doc.get('kind')!r}")
    stages = []
    for entry in doc["stages"]:
        level = Level(_gate_from_json(g) for g in entry["gates"])
        perm = Permutation(entry["perm"]) if "perm" in entry else None
        stages.append(Stage(level=level, perm=perm))
    return ComparatorNetwork(int(doc["n"]), stages)


def rdn_to_json(rdn: ReverseDeltaNetwork) -> dict[str, Any]:
    """Serialise a :class:`ReverseDeltaNetwork` tree."""
    if rdn.is_leaf:
        return {"kind": "rdn", "wire": rdn.wires[0]}
    return {
        "kind": "rdn",
        "child0": rdn_to_json(rdn.child0),
        "child1": rdn_to_json(rdn.child1),
        "final": [_gate_to_json(g) for g in rdn.final],
    }


def rdn_from_json(doc: dict[str, Any]) -> ReverseDeltaNetwork:
    """Deserialise a :class:`ReverseDeltaNetwork` tree."""
    if doc.get("kind") != "rdn":
        raise WireError(f"expected kind 'rdn', got {doc.get('kind')!r}")
    if "wire" in doc:
        return ReverseDeltaNetwork.leaf(int(doc["wire"]))
    return ReverseDeltaNetwork.node(
        rdn_from_json(doc["child0"]),
        rdn_from_json(doc["child1"]),
        tuple(_gate_from_json(g) for g in doc["final"]),
    )


def iterated_to_json(it: IteratedReverseDeltaNetwork) -> dict[str, Any]:
    """Serialise an :class:`IteratedReverseDeltaNetwork`."""
    blocks = []
    for perm, rdn in it.blocks:
        entry: dict[str, Any] = {"rdn": rdn_to_json(rdn)}
        if perm is not None:
            entry["perm"] = [int(x) for x in perm.mapping]
        blocks.append(entry)
    return {"kind": "iterated-rdn", "n": it.n, "blocks": blocks}


def iterated_from_json(doc: dict[str, Any]) -> IteratedReverseDeltaNetwork:
    """Deserialise an :class:`IteratedReverseDeltaNetwork`."""
    if doc.get("kind") != "iterated-rdn":
        raise WireError(f"expected kind 'iterated-rdn', got {doc.get('kind')!r}")
    blocks = []
    for entry in doc["blocks"]:
        perm = Permutation(entry["perm"]) if "perm" in entry else None
        blocks.append((perm, rdn_from_json(entry["rdn"])))
    return IteratedReverseDeltaNetwork(int(doc["n"]), blocks)


def program_to_json(prog: RegisterProgram) -> dict[str, Any]:
    """Serialise a :class:`RegisterProgram`."""
    steps = [
        {"perm": [int(x) for x in s.perm.mapping], "ops": s.ops_string()}
        for s in prog.steps
    ]
    return {"kind": "register-program", "n": prog.n, "steps": steps}


def program_from_json(doc: dict[str, Any]) -> RegisterProgram:
    """Deserialise a :class:`RegisterProgram`."""
    if doc.get("kind") != "register-program":
        raise WireError(
            f"expected kind 'register-program', got {doc.get('kind')!r}"
        )
    steps = [
        RegisterStep(
            perm=Permutation(entry["perm"]),
            ops=tuple(Op.from_str(c) for c in entry["ops"]),
        )
        for entry in doc["steps"]
    ]
    return RegisterProgram(int(doc["n"]), steps)


_SERIALIZERS = {
    ComparatorNetwork: network_to_json,
    ReverseDeltaNetwork: rdn_to_json,
    IteratedReverseDeltaNetwork: iterated_to_json,
    RegisterProgram: program_to_json,
}

_DESERIALIZERS = {
    "network": network_from_json,
    "rdn": rdn_from_json,
    "iterated-rdn": iterated_from_json,
    "register-program": program_from_json,
}


def dumps(obj: Any, indent: int | None = None) -> str:
    """Serialise any supported object to a version-tagged JSON string."""
    for cls, fn in _SERIALIZERS.items():
        if isinstance(obj, cls):
            return json.dumps({"version": FORMAT_VERSION, "payload": fn(obj)},
                              indent=indent)
    raise ReproError(f"cannot serialise objects of type {type(obj).__name__}")


def payload_of(doc: dict[str, Any]) -> dict[str, Any]:
    """Unwrap the version envelope and return the payload dict.

    Raises :class:`~repro.errors.ReproError` on a missing or mismatched
    ``version`` tag or a non-object payload, without interpreting the
    payload itself -- callers that want lenient, located validation of
    the payload (``repro lint``) build on this.
    """
    if not isinstance(doc, dict) or doc.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"expected a document object with version = {FORMAT_VERSION}"
        )
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        raise ReproError("document has no payload object")
    return payload


def from_payload(payload: dict[str, Any]) -> Any:
    """Deserialise a bare (already unwrapped) kind-tagged payload dict."""
    kind = payload.get("kind") if isinstance(payload, dict) else None
    if kind not in _DESERIALIZERS:
        raise ReproError(f"unknown payload kind {kind!r}")
    return _DESERIALIZERS[kind](payload)


def loads(text: str) -> Any:
    """Inverse of :func:`dumps`."""
    return from_payload(payload_of(json.loads(text)))
