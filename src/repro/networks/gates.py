"""Circuit elements of the comparator-network model.

The paper's register model labels each pair of registers per step with an
operation from ``{+, -, 0, 1}`` (Section 1):

``+``
    compare; smaller value to the first wire, larger to the second.
``-``
    compare; larger value to the first wire, smaller to the second.
``0``
    do nothing (the pair passes through).
``1``
    unconditionally exchange the two values (a switching element, *not*
    a comparison -- Definition 3.6 explicitly excludes it from collisions).

A :class:`Gate` applies one of these operations to an ordered pair of wire
positions ``(a, b)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .._util import require_wire
from ..errors import WireError

__all__ = ["Op", "Gate", "comparator", "reverse_comparator", "exchange", "passthrough"]


class Op(enum.Enum):
    """Operation applied by a gate to its ordered wire pair ``(a, b)``."""

    PLUS = "+"
    MINUS = "-"
    NOP = "0"
    SWAP = "1"

    @property
    def is_comparator(self) -> bool:
        """True iff the gate compares its inputs (``+`` or ``-``).

        Only comparator gates produce *collisions* in the sense of
        Definition 3.6; ``0``/``1`` elements never compare values.
        """
        return self in (Op.PLUS, Op.MINUS)

    @classmethod
    def from_str(cls, s: str) -> "Op":
        """Parse the single-character register-model label."""
        for op in cls:
            if op.value == s:
                return op
        raise WireError(f"unknown gate op {s!r}; expected one of '+', '-', '0', '1'")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Gate:
    """A two-wire circuit element on wire positions ``a`` and ``b``.

    Semantics on the pair of values ``(va, vb)`` currently at ``(a, b)``:

    ========  =======================================
    op        result at ``(a, b)``
    ========  =======================================
    ``+``     ``(min(va, vb), max(va, vb))``
    ``-``     ``(max(va, vb), min(va, vb))``
    ``0``     ``(va, vb)``
    ``1``     ``(vb, va)``
    ========  =======================================
    """

    a: int
    b: int
    op: Op = Op.PLUS

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise WireError(f"gate endpoints must differ, got ({self.a}, {self.b})")
        if self.a < 0 or self.b < 0:
            raise WireError(f"gate endpoints must be nonnegative: ({self.a}, {self.b})")
        if not isinstance(self.op, Op):
            object.__setattr__(self, "op", Op.from_str(self.op))

    @property
    def is_comparator(self) -> bool:
        """True iff this gate compares (op in ``{+, -}``)."""
        return self.op.is_comparator

    @property
    def wires(self) -> tuple[int, int]:
        """The ordered wire pair ``(a, b)``."""
        return (self.a, self.b)

    def apply_scalar(self, va, vb):
        """Apply the gate to a single pair of values, returning the new pair."""
        if self.op is Op.PLUS:
            return (va, vb) if va <= vb else (vb, va)
        if self.op is Op.MINUS:
            return (vb, va) if va <= vb else (va, vb)
        if self.op is Op.SWAP:
            return (vb, va)
        return (va, vb)

    def reversed(self) -> "Gate":
        """The same element with its endpoints swapped (equal behaviour).

        A ``+`` gate on ``(a, b)`` behaves like a ``-`` gate on ``(b, a)``,
        and vice versa; ``0``/``1`` are symmetric.
        """
        if self.op is Op.PLUS:
            return Gate(self.b, self.a, Op.MINUS)
        if self.op is Op.MINUS:
            return Gate(self.b, self.a, Op.PLUS)
        return Gate(self.b, self.a, self.op)

    def normalized(self) -> "Gate":
        """Equivalent gate with ``a < b``."""
        return self if self.a < self.b else self.reversed()

    def validate(self, n: int) -> None:
        """Check both endpoints lie in ``range(n)``."""
        require_wire(self.a, n)
        require_wire(self.b, n)

    def __str__(self) -> str:
        return f"({self.a}{self.op.value}{self.b})"


def comparator(a: int, b: int) -> Gate:
    """A ``+`` gate: min to ``a``, max to ``b``."""
    return Gate(a, b, Op.PLUS)


def reverse_comparator(a: int, b: int) -> Gate:
    """A ``-`` gate: max to ``a``, min to ``b``."""
    return Gate(a, b, Op.MINUS)


def exchange(a: int, b: int) -> Gate:
    """A ``1`` element: unconditionally swap."""
    return Gate(a, b, Op.SWAP)


def passthrough(a: int, b: int) -> Gate:
    """A ``0`` element: do nothing (kept for register-model fidelity)."""
    return Gate(a, b, Op.NOP)
