"""A single level (parallel layer) of gates touching disjoint wires."""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator

import numpy as np

from ..errors import LevelConflictError, WireError
from .gates import Gate, Op

__all__ = ["Level"]


class Level:
    """An immutable set of gates that act simultaneously on disjoint wires.

    The level corresponds to one entry :math:`\\vec{x}_i` of the paper's
    register model: every wire is touched by at most one gate, so all gates
    can fire in parallel.

    Parameters
    ----------
    gates:
        The gates of the level.  Their endpoints must be pairwise disjoint.
    """

    __slots__ = ("_gates", "__dict__")

    def __init__(self, gates: Iterable[Gate] = ()):
        gates = tuple(gates)
        seen: set[int] = set()
        for g in gates:
            if not isinstance(g, Gate):
                raise WireError(f"expected Gate, got {type(g).__name__}")
            for w in g.wires:
                if w in seen:
                    raise LevelConflictError(
                        f"wire {w} is touched by two gates in one level"
                    )
                seen.add(w)
        self._gates = gates

    # -- protocol ----------------------------------------------------------
    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gates of the level."""
        return self._gates

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Level):
            return NotImplemented
        return self._gates == other._gates

    def __hash__(self) -> int:
        return hash(self._gates)

    def __repr__(self) -> str:
        return f"Level([{', '.join(str(g) for g in self._gates)}])"

    # -- derived data --------------------------------------------------------
    @cached_property
    def comparator_count(self) -> int:
        """Number of true comparators (``+``/``-``) in the level."""
        return sum(1 for g in self._gates if g.is_comparator)

    @cached_property
    def touched_wires(self) -> frozenset[int]:
        """All wires touched by any gate of the level."""
        return frozenset(w for g in self._gates for w in g.wires)

    @cached_property
    def max_wire(self) -> int:
        """Largest wire index touched, or -1 for an empty level."""
        return max((max(g.wires) for g in self._gates), default=-1)

    def validate(self, n: int) -> None:
        """Check all gate endpoints lie in ``range(n)``."""
        for g in self._gates:
            g.validate(n)

    def gate_on(self, wire: int) -> Gate | None:
        """The gate touching ``wire``, if any."""
        for g in self._gates:
            if wire in g.wires:
                return g
        return None

    # -- vectorised index arrays (cached; used by network evaluation) -------
    @cached_property
    def _op_arrays(self) -> dict[Op, tuple[np.ndarray, np.ndarray]]:
        """Per-op endpoint index arrays for vectorised evaluation."""
        buckets: dict[Op, tuple[list[int], list[int]]] = {}
        for g in self._gates:
            a_list, b_list = buckets.setdefault(g.op, ([], []))
            a_list.append(g.a)
            b_list.append(g.b)
        return {
            op: (np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
            for op, (a, b) in buckets.items()
        }

    def apply_inplace(self, values: np.ndarray) -> None:
        """Apply the level to a value vector or batch, in place.

        ``values`` is a 1-D vector of length ``n`` or a 2-D ``(batch, n)``
        array; rows are processed independently.
        """
        arrays = self._op_arrays
        batched = values.ndim == 2

        def cols(idx: np.ndarray) -> np.ndarray:
            return values[:, idx] if batched else values[idx]

        def setcols(idx: np.ndarray, new: np.ndarray) -> None:
            if batched:
                values[:, idx] = new
            else:
                values[idx] = new

        for op, (ai, bi) in arrays.items():
            if op is Op.NOP:
                continue
            va = cols(ai)
            vb = cols(bi)
            if op is Op.PLUS:
                lo = np.minimum(va, vb)
                hi = np.maximum(va, vb)
                setcols(ai, lo)
                setcols(bi, hi)
            elif op is Op.MINUS:
                lo = np.minimum(va, vb)
                hi = np.maximum(va, vb)
                setcols(ai, hi)
                setcols(bi, lo)
            elif op is Op.SWAP:
                va = va.copy()
                setcols(ai, vb)
                setcols(bi, va)

    def normalized(self) -> "Level":
        """The level with each gate normalised to ``a < b`` and gates sorted."""
        return Level(sorted((g.normalized() for g in self._gates), key=lambda g: g.a))
