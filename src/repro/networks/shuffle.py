"""Shuffle-based networks and their reverse-delta structure.

A network is *based on the shuffle permutation* if, in register-model
form, every step's permutation is the shuffle :math:`\\pi` (Section 1).
This module provides:

* construction of shuffle-based networks from op vectors;
* the exact correspondence between a depth-``d`` shuffle-based block on
  :math:`n = 2^d` registers and a reverse delta network whose recursive
  split is by the *low* index bit (:func:`shuffle_split_rdn` structure):
  executed stage ``t`` of the shuffle block compares registers differing
  in bit ``d-1-t`` of their original index, and after ``t+1`` shuffles
  that bit sits at position 0, so the stage's adjacent pairs are exactly
  those register pairs;
* conversion of longer shuffle-based programs into iterated reverse delta
  networks (one block per ``d`` stages), realising the containment
  "shuffle-based networks ⊆ iterated reverse delta networks" the lower
  bound relies on.
"""

from __future__ import annotations

from typing import Sequence

from .._util import ilog2, require_power_of_two, rotate_left
from ..errors import TopologyError
from .delta import IteratedReverseDeltaNetwork, ReverseDeltaNetwork
from .gates import Op
from .registers import RegisterProgram, RegisterStep
from .builders import rdn_from_bit_order

__all__ = [
    "shuffle_based_network",
    "shuffle_program_from_split_rdn",
    "split_rdn_from_shuffle_stages",
    "iterated_rdn_from_shuffle_program",
    "shuffle_program_from_iterated_rdn",
]


def shuffle_based_network(
    n: int, op_vectors: Sequence[Sequence[Op | str]]
):
    """A shuffle-based :class:`ComparatorNetwork` from op vectors.

    ``op_vectors[t][k]`` is the op applied to registers ``(2k, 2k+1)``
    after the ``(t+1)``-th shuffle.
    """
    return RegisterProgram.shuffle_based(n, op_vectors).to_network()


def shuffle_program_from_split_rdn(rdn: ReverseDeltaNetwork) -> RegisterProgram:
    """Convert a low-bit-split RDN into an equivalent shuffle-based program.

    Requires the tree to have the :func:`~repro.networks.builders.
    shuffle_split_rdn` structure: the node at tree depth ``r`` splits its
    wires by bit ``r`` (root splits by bit 0).  The resulting program has
    ``d = lg n`` steps and computes *exactly* the same function: after
    ``d`` shuffles the registers return to their original order, so no
    trailing relabelling is needed.

    Raises :class:`~repro.errors.TopologyError` if the tree does not have
    the required bit structure.
    """
    n = rdn.n
    d = ilog2(require_power_of_two(n, "network size"))
    if rdn.levels != d or set(rdn.wires) != set(range(n)):
        raise TopologyError(
            "expected a full lg(n)-level reverse delta network on wires 0..n-1"
        )
    # ops[t][k] for stage t, pair (2k, 2k+1)
    ops = [[Op.NOP] * (n // 2) for _ in range(d)]

    def visit(node: ReverseDeltaNetwork, depth: int) -> None:
        if node.is_leaf:
            return
        bit = depth  # required structure: depth-r node splits by bit r
        mask = 1 << bit
        lows = {w for w in node.child0.wires}
        highs = {w for w in node.child1.wires}
        for w in lows:
            if w & mask or (w | mask) not in highs:
                raise TopologyError(
                    f"node at depth {depth} does not split its wires by bit {bit}"
                )
        t = d - 1 - depth  # executed stage index of this node's final level
        for g in node.final:
            if (g.a | mask) != g.b or g.a & mask:
                raise TopologyError(
                    f"final-level gate {g} does not pair across bit {bit}"
                )
            # After t+1 shuffles, register w sits at rot_left(w, t+1);
            # the pair lands on adjacent positions (q, q+1).
            q = rotate_left(g.a, d, t + 1)
            if q & 1:
                raise TopologyError("internal error: pair did not land even-aligned")
            ops[t][q // 2] = g.op
        visit(node.child0, depth + 1)
        visit(node.child1, depth + 1)

    visit(rdn, 0)
    return RegisterProgram.shuffle_based(n, [tuple(row) for row in ops])


def split_rdn_from_shuffle_stages(
    n: int, op_vectors: Sequence[Sequence[Op | str]]
) -> ReverseDeltaNetwork:
    """Convert ``d = lg n`` shuffle-based steps into a low-bit-split RDN.

    Inverse of :func:`shuffle_program_from_split_rdn`.  ``op_vectors``
    must have exactly ``lg n`` entries.
    """
    d = ilog2(require_power_of_two(n, "network size"))
    if len(op_vectors) != d:
        raise TopologyError(
            f"need exactly lg n = {d} op vectors for one block, got {len(op_vectors)}"
        )
    resolved = [
        [o if isinstance(o, Op) else Op.from_str(o) for o in row]
        for row in op_vectors
    ]
    for t, row in enumerate(resolved):
        if len(row) != n // 2:
            raise TopologyError(
                f"op vector {t} has length {len(row)}, expected {n // 2}"
            )

    def choose(height: int, bit: int, low_wire: int) -> Op | None:
        # A node of height h contributes executed level h, i.e. program
        # stage t = h - 1; the pair (low_wire, low_wire | 2^bit) then
        # sits at positions (q, q+1) with q = rot_left(low_wire, t+1).
        t = height - 1
        q = rotate_left(low_wire, d, t + 1)
        op = resolved[t][q // 2]
        return None if op is Op.NOP else op

    return rdn_from_bit_order(n, list(range(d)), choose)


def iterated_rdn_from_shuffle_program(
    program: RegisterProgram,
) -> IteratedReverseDeltaNetwork:
    """Convert a shuffle-based program into an iterated RDN.

    The program depth must be a multiple of ``lg n`` (pad with all-``0``
    op vectors beforehand if necessary -- note that padding *with the
    shuffle permutation* preserves the function because ``lg n`` extra
    shuffles with no gates restore the register order).  Each group of
    ``lg n`` consecutive steps becomes one reverse delta block; the
    inter-block permutations are all identity because ``lg n`` shuffles
    compose to the identity.
    """
    n = program.n
    d = ilog2(require_power_of_two(n, "network size"))
    if not program.is_shuffle_based():
        raise TopologyError("program is not shuffle-based")
    if program.depth % d != 0:
        raise TopologyError(
            f"program depth {program.depth} is not a multiple of lg n = {d}; "
            "pad with all-'0' steps first"
        )
    blocks = []
    for start in range(0, program.depth, d):
        op_vectors = [program.steps[start + t].ops for t in range(d)]
        blocks.append((None, split_rdn_from_shuffle_stages(n, op_vectors)))
    return IteratedReverseDeltaNetwork(n, blocks)


def shuffle_program_from_iterated_rdn(
    iterated: IteratedReverseDeltaNetwork,
) -> RegisterProgram:
    """Convert an iterated RDN with low-bit-split blocks back to a program.

    Every block must have the low-bit-split structure and every
    inter-block permutation must be identity; otherwise the iterated
    network is outside the (strict) shuffle-based class and a
    :class:`~repro.errors.TopologyError` is raised.
    """
    n = iterated.n
    steps: list[RegisterStep] = []
    for perm, rdn in iterated.blocks:
        if perm is not None and not perm.is_identity:
            raise TopologyError(
                "iterated RDN has a nontrivial inter-block permutation; "
                "not expressible as a strict shuffle-based program"
            )
        steps.extend(shuffle_program_from_split_rdn(rdn).steps)
    return RegisterProgram(n, steps)
