"""The versioned request/response schema of the certificate service.

One wire format shared by the daemon (:mod:`repro.serve.server`), the
stdlib client (:mod:`repro.serve.client`), the load generator, and the
CLI (``repro verify --json`` emits the same verdict document the
service returns).  The schema is pinned in the sanitize fingerprint
registry: adding or renaming a field without bumping
:data:`PROTOCOL_VERSION` fails ``repro sanitize``.

A request names an *operation* -- a farm job kind from
:data:`SERVE_OPS` -- plus the job's parameter dict, so the service
inherits the farm's content addressing (the request's cache key *is*
:meth:`repro.farm.jobs.Job.key`), its derived seeding, and its
revalidation trust boundary for store hits.  Two operations are served:

``attack``
    Run the Plaxton-Suel adversary against a family instance or an
    embedded serialised circuit; the result carries the per-block trace
    and, on success, a verified non-sorting certificate
    (:class:`repro.farm.jobs.AttackJob`).
``verify``
    0-1-principle verification of a named sorter
    (:class:`repro.farm.jobs.VerifyJob`); the result is the shared
    verdict document of :func:`verdict_document`.

Responses carry the protocol version, the operation, the content key,
a status, the cache ``source`` (``memory``/``store``/``computed``/
``joined``), and either the job's result document or an error message.
Identical requests yield byte-identical ``result`` documents -- the
envelope's ``source`` field is the only part that may differ between a
cold and a warm call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import FarmError, ServeError
from ..farm.jobs import Job, job_for

__all__ = [
    "PROTOCOL_VERSION",
    "SERVE_OPS",
    "SOURCES",
    "ServeRequest",
    "ServeResponse",
    "request_from_json",
    "response_from_json",
    "verdict_document",
]

#: Bump on any backwards-incompatible change to request/response shapes.
PROTOCOL_VERSION = 1

#: Operations the service accepts, by farm job kind.
SERVE_OPS = ("attack", "verify")

#: Where a response's result came from, cheapest first.
SOURCES = ("memory", "store", "joined", "computed")


@dataclass(frozen=True)
class ServeRequest:
    """One query: an operation name plus its job parameter dict."""

    op: str
    params: dict[str, Any]

    def to_json(self) -> dict[str, Any]:
        """The wire document; inverse of :func:`request_from_json`."""
        return {
            "protocol": PROTOCOL_VERSION,
            "op": self.op,
            "params": dict(self.params),
        }

    def job(self) -> Job:
        """Instantiate the farm job this request addresses.

        Raises :class:`~repro.errors.ServeError` for an unknown
        operation or invalid parameters, so the HTTP boundary can map
        every malformed request to a 400 without touching the engine.
        """
        if self.op not in SERVE_OPS:
            raise ServeError(
                f"unknown operation {self.op!r}; "
                f"available: {', '.join(SERVE_OPS)}"
            )
        if not isinstance(self.params, dict):
            raise ServeError(
                f"request params must be an object, got "
                f"{type(self.params).__name__}"
            )
        try:
            return job_for(self.op, self.params)
        except FarmError as exc:
            raise ServeError(str(exc)) from exc


@dataclass(frozen=True)
class ServeResponse:
    """One reply: the content key, status, cache source, and result."""

    op: str
    key: str
    status: str  # "ok" | "error"
    source: str | None = None  # one of SOURCES when status == "ok"
    result: dict[str, Any] | None = None
    error: str | None = None

    def to_json(self) -> dict[str, Any]:
        """The wire document; inverse of :func:`response_from_json`."""
        doc: dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "op": self.op,
            "key": self.key,
            "status": self.status,
            "source": self.source,
            "result": self.result,
        }
        if self.error is not None:
            doc["error"] = self.error
        return doc

    @property
    def ok(self) -> bool:
        """Whether the request produced a usable result document."""
        return self.status == "ok"

    @property
    def cached(self) -> bool:
        """Whether the result was served without recomputation."""
        return self.source in ("memory", "store", "joined")


def _require_protocol(doc: Any, what: str) -> dict[str, Any]:
    if not isinstance(doc, dict):
        raise ServeError(f"{what} must be a JSON object, got "
                         f"{type(doc).__name__}")
    version = doc.get("protocol")
    if version != PROTOCOL_VERSION:
        raise ServeError(
            f"{what} has protocol version {version!r}; this build speaks "
            f"{PROTOCOL_VERSION}"
        )
    return doc


def request_from_json(doc: Any) -> ServeRequest:
    """Parse and validate one request document."""
    doc = _require_protocol(doc, "request")
    op = doc.get("op")
    if not isinstance(op, str) or op not in SERVE_OPS:
        raise ServeError(
            f"request op must be one of {', '.join(SERVE_OPS)}; got {op!r}"
        )
    params = doc.get("params")
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ServeError(
            f"request params must be an object, got {type(params).__name__}"
        )
    return ServeRequest(op=op, params=params)


def response_from_json(doc: Any) -> ServeResponse:
    """Parse and validate one response document (the client's half)."""
    doc = _require_protocol(doc, "response")
    status = doc.get("status")
    if status not in ("ok", "error"):
        raise ServeError(f"response status must be ok|error, got {status!r}")
    source = doc.get("source")
    if source is not None and source not in SOURCES:
        raise ServeError(
            f"response source must be one of {', '.join(SOURCES)}; "
            f"got {source!r}"
        )
    result = doc.get("result")
    if result is not None and not isinstance(result, dict):
        raise ServeError(
            f"response result must be an object, got {type(result).__name__}"
        )
    error = doc.get("error")
    if error is not None and not isinstance(error, str):
        raise ServeError("response error must be a string")
    if status == "ok" and result is None:
        raise ServeError("ok response carries no result document")
    return ServeResponse(
        op=str(doc.get("op", "")),
        key=str(doc.get("key", "")),
        status=status,
        source=source,
        result=result,
        error=error,
    )


def verdict_document(
    *,
    n: int,
    depth: int,
    size: int,
    witness: "list[int] | None",
    sorter: str | None = None,
) -> dict[str, Any]:
    """The machine-readable sortedness verdict.

    The one shape shared by ``repro verify --json``, the farm's
    :class:`~repro.farm.jobs.VerifyJob` results, and the service's
    ``verify`` responses: a network identity (``sorter`` name when
    built from the registry, else ``None``), its dimensions, the
    boolean verdict, and the unsorted 0-1 witness when one exists.
    """
    return {
        "protocol": PROTOCOL_VERSION,
        "sorter": sorter,
        "n": int(n),
        "depth": int(depth),
        "size": int(size),
        "is_sorter": witness is None,
        "witness": None if witness is None else [int(x) for x in witness],
    }
