"""Stdlib client for the certificate daemon.

A thin, dependency-free wrapper over :mod:`http.client` speaking the
:mod:`repro.serve.protocol` wire format.  Used three ways: by ``repro
query`` on the command line, by the load generator's worker threads
(one :class:`ServeClient` per thread -- instances are not thread-safe,
but are cheap: one TCP connection per call, matching the daemon's
``Connection: close`` replies), and by the CI smoke test.

Transport failures (daemon not up, connection reset) raise
:class:`~repro.errors.ServeError`; HTTP-level rejections (429
backpressure, 503 draining, 400 malformed) raise the
:class:`ServeHTTPError` subclass carrying ``status``, so a caller can
tell "retry with backoff" apart from "fix the request".
"""

from __future__ import annotations

import http.client
import json
from typing import Any

from ..errors import ServeError
from .protocol import ServeRequest, ServeResponse, response_from_json

__all__ = ["ServeHTTPError", "ServeClient"]


class ServeHTTPError(ServeError):
    """The daemon answered with a non-200 status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status

    @property
    def retryable(self) -> bool:
        """Whether backing off and retrying can succeed (429/503/504)."""
        return self.status in (429, 503, 504)


class ServeClient:
    """One caller's handle on a daemon at ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *,
                 timeout: float = 310.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    def _call(self, method: str, path: str,
              body: "dict[str, Any] | None" = None) -> tuple[int, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            reply = conn.getresponse()
            raw = reply.read()
            try:
                doc = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServeError(
                    f"daemon reply is not JSON ({reply.status}): {exc}"
                ) from exc
            return reply.status, doc
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(
                f"cannot reach daemon at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()

    def query(self, op: str, params: dict[str, Any]) -> ServeResponse:
        """POST one request; returns the parsed response on HTTP 200.

        Raises :class:`ServeHTTPError` for any other status (consult
        ``.retryable``), :class:`~repro.errors.ServeError` when the
        daemon is unreachable or replies off-protocol.
        """
        request = ServeRequest(op=op, params=params)
        status, doc = self._call("POST", "/v1/query", request.to_json())
        if status != 200:
            message = doc.get("error") if isinstance(doc, dict) else None
            if message is None and isinstance(doc, dict):
                message = str(doc)
            raise ServeHTTPError(status, message or "unexplained rejection")
        return response_from_json(doc)

    def health(self) -> dict[str, Any]:
        """GET ``/healthz``; raises unless the daemon answers 200."""
        status, doc = self._call("GET", "/healthz")
        if status != 200:
            raise ServeHTTPError(status, str(doc))
        return doc

    def stats(self) -> dict[str, Any]:
        """GET ``/statsz``: the daemon's cache/batcher/store counters."""
        status, doc = self._call("GET", "/statsz")
        if status != 200:
            raise ServeHTTPError(status, str(doc))
        return doc

    def metrics(self) -> dict[str, Any]:
        """GET ``/metricsz``: the live metrics-registry snapshot.

        Validate with
        :func:`repro.obs.registry.validate_metrics_document`; the
        Prometheus text rendering is available over HTTP with
        ``GET /metricsz?format=prom`` (not through this helper, which
        speaks JSON only).
        """
        status, doc = self._call("GET", "/metricsz")
        if status != 200:
            raise ServeHTTPError(status, str(doc))
        return doc
