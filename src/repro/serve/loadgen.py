"""Closed-loop load generator for the certificate daemon.

``repro loadgen`` drives a running daemon with ``clients`` concurrent
worker threads, each issuing requests back-to-back (closed loop: a
worker's next request starts only when its previous reply lands), drawn
round-robin from a small mix of distinct verify/attack queries.  The
run reports what the benchmark gate cares about:

* latency percentiles (p50/p99) split by *cold* (``source ==
  "computed"``) and *warm* (served from memory/store/joined) requests,
* throughput in certificates per second,
* error/rejection counts (429 backpressure answers are counted
  separately from hard failures -- a saturated daemon shedding load is
  behaving correctly).

Threads (not asyncio) on the client side are deliberate: each worker
blocks in stdlib :mod:`http.client`, so the generator exercises the
daemon with genuinely concurrent sockets the way real callers would.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ServeError
from ..obs.metrics import bucket_counts, percentile
from ..obs.registry import DEFAULT_LATENCY_BOUNDS
from .client import ServeClient, ServeHTTPError

__all__ = ["LOADGEN_FORMAT", "LoadReport", "default_mix", "run_load"]

#: Version of the ``loadgen --json`` report document; bump on any
#: backwards-incompatible field change so archived reports stay
#: identifiable (pinned in the sanitize schema-fingerprint registry).
LOADGEN_FORMAT = 2


def default_mix(unique: int = 8) -> list[dict[str, Any]]:
    """A standard query mix: ``unique`` distinct verify requests.

    Small odd-even transposition sorts at distinct widths: cheap enough
    to compute cold in CI, distinct enough that every mix entry owns a
    separate cache key.
    """
    unique = max(1, int(unique))
    return [
        {
            "op": "verify",
            "params": {"sorter": "oddeven_transposition", "n": 4 + 2 * i},
        }
        for i in range(unique)
    ]


@dataclass
class LoadReport:
    """Everything one load run observed."""

    requests: int = 0
    errors: int = 0
    rejected: int = 0
    elapsed: float = 0.0
    #: Per-request latencies in seconds, split by cache temperature.
    cold_latencies: list[float] = field(default_factory=list)
    warm_latencies: list[float] = field(default_factory=list)
    #: Response count by envelope source (memory/store/joined/computed).
    by_source: dict[str, int] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        """Requests that returned a usable result document."""
        return len(self.cold_latencies) + len(self.warm_latencies)

    @property
    def certificates_per_second(self) -> float:
        """Completed requests per wall-clock second."""
        if self.elapsed <= 0:
            return 0.0
        return self.completed / self.elapsed

    def to_json(self) -> dict[str, Any]:
        """Machine-readable summary (latencies reduced to percentiles).

        v2 added ``loadgen`` (the format version), per-temperature
        ``max``, and histogram ``buckets`` over the same bounds the
        daemon's ``/metricsz`` histograms use, so a report can be
        compared bucket-for-bucket against the server-side view.
        """

        def side(latencies: list[float]) -> dict[str, Any]:
            return {
                "count": len(latencies),
                "p50": percentile(latencies, 50.0),
                "p99": percentile(latencies, 99.0),
                "max": max(latencies) if latencies else 0.0,
                "buckets": {
                    "bounds": list(DEFAULT_LATENCY_BOUNDS),
                    "counts": bucket_counts(latencies, DEFAULT_LATENCY_BOUNDS),
                },
            }

        return {
            "loadgen": LOADGEN_FORMAT,
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "rejected": self.rejected,
            "elapsed": self.elapsed,
            "certificates_per_second": self.certificates_per_second,
            "by_source": dict(sorted(self.by_source.items())),
            "cold": side(self.cold_latencies),
            "warm": side(self.warm_latencies),
        }

    def format(self) -> str:
        """Human-readable summary for the CLI."""
        doc = self.to_json()
        lines = [
            f"requests      {doc['requests']} "
            f"(completed {doc['completed']}, errors {doc['errors']}, "
            f"rejected {doc['rejected']})",
            f"elapsed       {doc['elapsed']:.3f}s",
            f"throughput    {doc['certificates_per_second']:.1f} "
            "certificates/s",
            f"cold latency  p50 {doc['cold']['p50'] * 1e3:.1f}ms  "
            f"p99 {doc['cold']['p99'] * 1e3:.1f}ms  "
            f"({doc['cold']['count']} requests)",
            f"warm latency  p50 {doc['warm']['p50'] * 1e3:.1f}ms  "
            f"p99 {doc['warm']['p99'] * 1e3:.1f}ms  "
            f"({doc['warm']['count']} requests)",
            "by source     " + json.dumps(doc["by_source"], sort_keys=True),
        ]
        return "\n".join(lines)


def _worker(
    host: str,
    port: int,
    mix: list[dict[str, Any]],
    offset: int,
    count: int,
    report: LoadReport,
    lock: threading.Lock,
) -> None:
    client = ServeClient(host, port)
    # a network I/O loop, not wire math: nothing here vectorises
    for i in range(count):  # sanitize: ok[perf/scalar-loop-over-wires]
        query = mix[(offset + i) % len(mix)]
        start = time.perf_counter()
        try:
            response = client.query(query["op"], query["params"])
        except ServeHTTPError as exc:
            with lock:
                if exc.retryable:
                    report.rejected += 1
                else:
                    report.errors += 1
            continue
        except ServeError:
            with lock:
                report.errors += 1
            continue
        latency = time.perf_counter() - start
        with lock:
            if not response.ok:
                report.errors += 1
                continue
            source = response.source or "computed"
            report.by_source[source] = report.by_source.get(source, 0) + 1
            if response.cached:
                report.warm_latencies.append(latency)
            else:
                report.cold_latencies.append(latency)


def run_load(
    host: str,
    port: int,
    *,
    clients: int = 8,
    requests_per_client: int = 16,
    mix: "list[dict[str, Any]] | None" = None,
) -> LoadReport:
    """Drive a daemon with a closed-loop thread-per-client load.

    Returns the populated :class:`LoadReport`; raises
    :class:`~repro.errors.ServeError` if the daemon fails its health
    check before the run starts.
    """
    clients = max(1, int(clients))
    requests_per_client = max(1, int(requests_per_client))
    mix = mix or default_mix()
    ServeClient(host, port).health()  # fail fast when nothing listens
    report = LoadReport(requests=clients * requests_per_client)
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_worker,
            args=(host, port, mix, i, requests_per_client, report, lock),
            name=f"loadgen-{i}",
        )
        for i in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed = time.perf_counter() - start
    return report
