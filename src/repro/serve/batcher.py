"""Cold-request coalescing onto the farm's pre-fork worker pool.

Cache misses are expensive (an adversary run or a 0-1 sweep), so the
daemon does not execute them inline: misses are queued, and a single
dispatcher task drains the queue in *batches* -- up to ``max_batch``
jobs gathered within a ``max_delay`` window -- handing each batch to
:func:`repro.farm.runner.run_jobs` on a worker thread.  One batch pays
one pool spin-up for up to ``max_batch`` independent jobs, the worker
pool computes them in parallel, and per-job timeouts/retries come for
free from the runner's own failure semantics.

The cache layer above already single-flights identical requests, so
every job reaching the batcher is distinct; the batcher only has to
amortise pool startup and keep the event loop unblocked (the blocking
``run_jobs`` call runs via :func:`asyncio.to_thread`, which propagates
the tracing context, so ``farm.job`` spans nest under the daemon's
``serve.batch`` span).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from ..errors import ReproError, ServeError
from ..farm.jobs import Job
from ..farm.runner import run_jobs
from ..obs import events as obs_events
from ..obs.registry import get_registry
from ..obs.trace import get_tracer

__all__ = ["Batcher"]


@dataclass
class _Item:
    job: Job
    future: asyncio.Future = field(default_factory=lambda: (
        asyncio.get_running_loop().create_future()
    ))


class Batcher:
    """Queue cold jobs, dispatch them in batches to the worker pool."""

    def __init__(
        self,
        *,
        workers: int = 2,
        max_batch: int = 32,
        max_delay: float = 0.01,
        job_timeout: "float | None" = None,
        retries: int = 0,
    ):
        self.workers = max(1, int(workers))
        self.max_batch = max(1, int(max_batch))
        self.max_delay = max(0.0, float(max_delay))
        self.job_timeout = job_timeout
        self.retries = max(0, int(retries))
        self._queue: "asyncio.Queue[_Item]" = asyncio.Queue()
        self._task: "asyncio.Task | None" = None
        self.batches = 0
        self.dispatched = 0

    def start(self) -> None:
        """Spawn the dispatcher task (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Cancel the dispatcher and fail anything still queued."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if not item.future.done():
                item.future.set_exception(
                    ServeError("daemon shutting down before dispatch")
                )
                item.future.exception()

    async def submit(self, job: Job) -> dict[str, Any]:
        """Enqueue one job and await its result document.

        Raises :class:`~repro.errors.ServeError` when the job errors or
        times out on the pool (carrying the worker's error string).
        """
        self.start()
        item = _Item(job=job)
        await self._queue.put(item)
        return await item.future

    async def _gather(self) -> "list[_Item]":
        """One batch: the first waiter plus up to ``max_batch - 1`` more
        arriving within the ``max_delay`` window."""
        batch = [await self._queue.get()]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_delay
        try:
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
        except asyncio.CancelledError:
            # shutdown landed mid-window: hand the already-dequeued
            # items back so stop()'s drain fails their futures instead
            # of stranding them in this dying task's locals
            for item in batch:
                self._queue.put_nowait(item)
            raise
        return batch

    async def _run(self) -> None:
        while True:
            batch = await self._gather()
            tracer = get_tracer()
            self.batches += 1
            self.dispatched += len(batch)
            registry = get_registry()
            registry.inc("serve.batches")
            registry.inc("serve.batch_jobs", len(batch))
            by_key = {item.job.key(): item for item in batch}
            try:
                with tracer.span(
                    obs_events.SPAN_SERVE_BATCH, jobs=len(batch)
                ):
                    report = await asyncio.to_thread(
                        run_jobs,
                        [item.job for item in batch],
                        workers=min(self.workers, len(batch)),
                        timeout=self.job_timeout,
                        retries=self.retries,
                    )
            except asyncio.CancelledError:
                # shutdown mid-dispatch: the pool thread finishes on
                # its own, but nobody will read the report -- fail the
                # waiters rather than strand them
                for item in by_key.values():
                    if not item.future.done():
                        item.future.set_exception(
                            ServeError("daemon shutting down mid-dispatch")
                        )
                        item.future.exception()
                raise
            except ReproError as exc:
                # a dispatcher-side failure (pool spin-up, pickling...)
                # must fail this batch's waiters, not kill the
                # dispatcher task and strand their futures forever
                for item in by_key.values():
                    if not item.future.done():
                        item.future.set_exception(
                            ServeError(
                                f"batch dispatch failed before any job "
                                f"ran: {exc}"
                            )
                        )
                        item.future.exception()
                continue
            for outcome in report.outcomes:
                item = by_key.pop(outcome.key, None)
                if item is None or item.future.done():
                    continue
                if outcome.ok and outcome.result is not None:
                    item.future.set_result(outcome.result)
                else:
                    item.future.set_exception(
                        ServeError(
                            f"job {item.job.label()} failed on the pool "
                            f"({outcome.status}): "
                            f"{outcome.error or 'no result'}"
                        )
                    )
                    item.future.exception()
            # a runner bug could drop an outcome; never strand a waiter
            for item in by_key.values():
                if not item.future.done():
                    item.future.set_exception(
                        ServeError(
                            f"job {item.job.label()} vanished from the "
                            "batch report"
                        )
                    )
                    item.future.exception()
