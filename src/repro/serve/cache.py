"""Read-through result cache: memory LRU over the artifact store.

The service's hot path.  A request's result is looked up in three
tiers, cheapest first:

1. an in-process LRU of result documents (``memory`` -- no disk, no
   revalidation: entries only enter this tier already trusted);
2. the content-addressed :class:`~repro.farm.ArtifactStore` (``store``
   -- the document is revalidated through the job's own trust boundary,
   :meth:`repro.farm.jobs.Job.revalidate`, off the event loop, exactly
   as a resumed farm campaign would revalidate it);
3. the compute callback (``computed`` -- the batcher dispatches the job
   to the pre-fork worker pool and the result is persisted to the store
   before anyone sees it).

Concurrent identical requests are *single-flighted*: the first caller
computes, every later caller awaits the same future and reports source
``joined``.  This is what turns a thundering herd of identical cold
requests into exactly one adversary run.

Blocking discipline (checked by ``repro race``): the event loop never
touches the disk.  Tier-2 store reads and the post-compute store write
run on worker threads via :func:`asyncio.to_thread`; the store's own
internal lock makes its LRU safe under those threads, and single-flight
guarantees at most one writer per key.  Everything else -- the memory
LRU, the in-flight futures, the counters -- is touched from the loop
thread only and needs no lock.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Awaitable, Callable

from ..errors import ReproError
from ..farm.jobs import Job
from ..farm.store import ArtifactStore
from ..obs import events as obs_events
from ..obs.registry import get_registry
from ..obs.trace import get_tracer

__all__ = ["ServeCache"]

#: Type of the cold-miss callback: run the job, return its result doc.
ComputeFn = Callable[[Job], Awaitable[dict[str, Any]]]


class ServeCache:
    """Single-flight, read-through cache in front of an artifact store."""

    def __init__(self, store: ArtifactStore, *, memory_size: int = 1024):
        self.store = store
        self.memory_size = max(0, int(memory_size))
        self._memory: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._inflight: dict[str, asyncio.Future] = {}
        #: Lookup counts by source, plus revalidation failures.
        self.counters: dict[str, int] = {
            "memory": 0,
            "store": 0,
            "joined": 0,
            "computed": 0,
            "revalidation_miss": 0,
        }

    def _remember(self, key: str, result: dict[str, Any]) -> None:
        if self.memory_size <= 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_size:
            self._memory.popitem(last=False)

    def _stored_result(
        self, job: Job, key: str
    ) -> "tuple[dict[str, Any] | None, bool]":
        """Load and revalidate one stored result, on a worker thread.

        Returns ``(result, revalidation_missed)``; a missing, damaged
        or invalid document is ``(None, ...)``.  Counters stay with the
        async caller so they are only ever touched on the loop thread.
        """
        doc = self.store.get(key)
        if doc is None or doc.get("status") != "ok":
            return None, False
        result = doc.get("result")
        if not isinstance(result, dict):
            return None, False
        try:
            valid = job.revalidate(result)
        except ReproError:
            valid = False
        if not valid:
            return None, True
        return result, False

    async def lookup(
        self, job: Job, compute: ComputeFn
    ) -> tuple[dict[str, Any], str]:
        """Resolve one job to ``(result document, source)``.

        ``compute`` is awaited only on a full miss, at most once per key
        across all concurrent callers.  Raises whatever ``compute``
        raises; joined waiters see the same exception.
        """
        key = job.key()
        tracer = get_tracer()
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            self.counters["memory"] += 1
            get_registry().inc("serve.cache.memory")
            if tracer.enabled:
                tracer.event(
                    obs_events.EV_SERVE_CACHE,
                    key=key[:12], source="memory", op=job.kind,
                )
            return hit, "memory"
        shared = self._inflight.get(key)
        if shared is not None:
            result = await asyncio.shield(shared)
            self.counters["joined"] += 1
            get_registry().inc("serve.cache.joined")
            if tracer.enabled:
                tracer.event(
                    obs_events.EV_SERVE_CACHE,
                    key=key[:12], source="joined", op=job.kind,
                )
            return result, "joined"
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            # tier-2 disk access runs off the loop: the read + reval is
            # a one-time cost per key per process, but one cold read
            # must not stall every other connection
            result, reval_miss = await asyncio.to_thread(
                self._stored_result, job, key
            )
            if reval_miss:
                self.counters["revalidation_miss"] += 1
                get_registry().inc("serve.cache.revalidation_miss")
            if result is not None:
                source = "store"
            else:
                result = await compute(job)
                await asyncio.to_thread(
                    self.store.put,
                    key,
                    {"job": job.to_json(), "status": "ok", "result": result},
                )
                source = "computed"
            self._remember(key, result)
            future.set_result(result)
        except BaseException as exc:
            future.set_exception(exc)
            # consume the exception so a flight nobody joined does not
            # log "exception was never retrieved" at GC time
            future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
        self.counters[source] += 1
        get_registry().inc(f"serve.cache.{source}")
        if tracer.enabled:
            tracer.event(
                obs_events.EV_SERVE_CACHE,
                key=key[:12], source=source, op=job.kind,
            )
        return result, source
