"""The certificate daemon: a zero-dependency asyncio HTTP front end.

``repro serve`` binds this server to a host/port and answers three
routes over plain HTTP/1.1 (parsed here with :mod:`asyncio` streams --
no web framework, matching the repo's stdlib-only rule):

``POST /v1/query``
    Body: one :class:`~repro.serve.protocol.ServeRequest` document.
    The request is mapped to a farm job, resolved through the
    :class:`~repro.serve.cache.ServeCache` (memory -> store ->
    batched compute on the pre-fork pool), and answered with a
    :class:`~repro.serve.protocol.ServeResponse`.  Identical requests
    return byte-identical ``result`` documents; only the envelope's
    ``source`` differs between cold and warm calls.
``GET /healthz``
    Liveness: ``{"status": "ok"}`` (``"draining"`` during shutdown).
``GET /statsz``
    Cache/batcher/store counters, uptime, per-tier hit ratios and the
    in-flight count, for the load generator and CI smoke.
``GET /metricsz``
    The live metrics-registry snapshot (counters, gauges, histogram
    buckets with ring time series) as JSON, or in the Prometheus text
    exposition format with ``?format=prom``; ``repro top`` polls this.

Operational behaviour, mirroring the farm runner's discipline:

* **Backpressure** -- at most ``max_inflight`` requests are admitted;
  beyond that the daemon answers ``429`` immediately (with an
  ``EV_SERVE_REJECT`` event) instead of queueing unboundedly.
* **Timeouts** -- a request that exceeds ``request_timeout`` answers
  ``504``; the underlying job keeps its own per-job pool timeout.
* **Graceful drain** -- SIGTERM/SIGINT stop the listener, answer new
  requests ``503``, wait for in-flight work to land (results are
  persisted to the store as they complete, like the farm's
  SIGINT-flush), then exit.
* **Broken peers** -- a client that disappears mid-reply
  (``BrokenPipeError``/``ConnectionResetError``) costs only its own
  connection handler; the daemon keeps serving.

Every admitted request runs under a ``serve.request`` span, so one
trace file tells the whole story: request -> cache decision -> batch
dispatch -> farm job -> store put.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import time
from typing import Any, Callable
from urllib.parse import parse_qs

from ..errors import ReproError, ServeError
from ..farm.store import ArtifactStore
from ..obs import events as obs_events
from ..obs.flight import FlightRecorder, get_flight
from ..obs.registry import MetricsRegistry, prometheus_text, set_registry
from ..obs.trace import get_tracer
from . import protocol
from .batcher import Batcher
from .cache import ServeCache

__all__ = ["STATSZ_FORMAT", "ServeSettings", "CertificateServer"]

#: Version of the ``/statsz`` document (pinned in the sanitize schema
#: registry).  v2 added ``statsz``/``uptime``/``cache_ratios`` and made
#: ``inflight`` a stable part of the contract.
STATSZ_FORMAT = 2

#: Seconds between registry ring-series samples while serving.
_SAMPLE_INTERVAL = 1.0

logger = logging.getLogger("repro.serve")

#: Largest request body the daemon will read, in bytes.  Big enough for
#: an embedded serialised circuit, small enough to bound memory.
_MAX_BODY = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ServeSettings:
    """Tunables of one daemon instance, with serving defaults."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8642,
        workers: int = 2,
        max_inflight: int = 64,
        max_batch: int = 32,
        batch_delay: float = 0.01,
        request_timeout: float = 300.0,
        job_timeout: "float | None" = None,
        memory_size: int = 1024,
    ):
        self.host = host
        self.port = int(port)
        self.workers = max(1, int(workers))
        self.max_inflight = max(1, int(max_inflight))
        self.max_batch = max(1, int(max_batch))
        self.batch_delay = max(0.0, float(batch_delay))
        self.request_timeout = max(0.1, float(request_timeout))
        self.job_timeout = job_timeout
        self.memory_size = max(0, int(memory_size))


class CertificateServer:
    """One daemon: listener, cache, batcher, and drain choreography."""

    def __init__(self, store: ArtifactStore, settings: "ServeSettings | None" = None):
        self.store = store
        self.settings = settings or ServeSettings()
        self.cache = ServeCache(store, memory_size=self.settings.memory_size)
        self.batcher = Batcher(
            workers=self.settings.workers,
            max_batch=self.settings.max_batch,
            max_delay=self.settings.batch_delay,
            job_timeout=self.settings.job_timeout,
            retries=0,
        )
        self.draining = False
        self.inflight = 0
        self.requests = 0
        self.rejected = 0
        #: The daemon's live metrics; installed process-globally while
        #: serving so the cache/batcher/farm layers publish into it.
        self.registry = MetricsRegistry()
        self.started = time.monotonic()
        self._server: "asyncio.base_events.Server | None" = None
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._sampler: "asyncio.Task | None" = None
        self._previous_registry: "MetricsRegistry | None" = None
        #: Live SIGUSR2 flight-dump tasks, referenced so the loop
        #: cannot garbage-collect one mid-dump.
        self._flight_dumps: "set[asyncio.Task]" = set()

    # -- request plumbing ---------------------------------------------------

    async def _compute(self, job: Any) -> dict[str, Any]:
        return await self.batcher.submit(job)

    async def handle_query(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """Resolve one parsed request body to ``(http_status, document)``."""
        request = protocol.request_from_json(body)
        job = request.job()
        key = job.key()
        try:
            result, source = await asyncio.wait_for(
                self.cache.lookup(job, self._compute),
                self.settings.request_timeout,
            )
        except asyncio.TimeoutError:
            return 504, protocol.ServeResponse(
                op=request.op,
                key=key,
                status="error",
                error=(
                    f"request exceeded {self.settings.request_timeout:g}s; "
                    "the job may still complete and land in the store"
                ),
            ).to_json()
        except ServeError as exc:
            return 500, protocol.ServeResponse(
                op=request.op, key=key, status="error", error=str(exc)
            ).to_json()
        return 200, protocol.ServeResponse(
            op=request.op, key=key, status="ok", source=source, result=result
        ).to_json()

    def stats_document(self) -> dict[str, Any]:
        """The ``/statsz`` body: counters, uptime, per-tier hit ratios.

        Versioned by :data:`STATSZ_FORMAT` and pinned in the sanitize
        schema-fingerprint registry; add fields freely, but renaming or
        removing one must bump the version.
        """
        cache = dict(self.cache.counters)
        lookups = sum(
            count for tier, count in cache.items()
            if tier != "revalidation_miss"
        )
        ratios = {
            tier: (cache.get(tier, 0) / lookups if lookups else 0.0)
            for tier in ("memory", "store", "joined", "computed")
        }
        return {
            "statsz": STATSZ_FORMAT,
            "protocol": protocol.PROTOCOL_VERSION,
            "status": "draining" if self.draining else "ok",
            "uptime": max(0.0, time.monotonic() - self.started),
            "requests": self.requests,
            "rejected": self.rejected,
            "inflight": self.inflight,
            "cache": cache,
            "cache_ratios": ratios,
            "batches": self.batcher.batches,
            "dispatched": self.batcher.dispatched,
            "store": {
                "hits": self.store.cache_hits,
                "misses": self.store.cache_misses,
            },
        }

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: "dict[str, Any] | None",
        query: str = "",
    ) -> "tuple[int, dict[str, Any] | str]":
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, {"status": "draining" if self.draining else "ok"}
        if path == "/statsz":
            if method != "GET":
                return 405, {"error": "statsz is GET-only"}
            return 200, self.stats_document()
        if path == "/metricsz":
            if method != "GET":
                return 405, {"error": "metricsz is GET-only"}
            snapshot = self.registry.snapshot()
            form = parse_qs(query).get("format", ["json"])[0]
            if form == "prom":
                return 200, prometheus_text(snapshot)
            if form != "json":
                return 400, {"error": f"unknown format {form!r} "
                                      "(expected json or prom)"}
            return 200, snapshot
        if path == "/v1/query":
            if method != "POST":
                return 405, {"error": "query is POST-only"}
            if body is None:
                return 400, {"error": "query requires a JSON body"}
            return await self.handle_query(body)
        return 404, {"error": f"no route {path!r}"}

    # -- HTTP/1.1 over asyncio streams --------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "tuple[str, str, str, bytes] | None":
        """Parse one request into ``(method, path, query, body)``;
        ``None`` when the peer closed cleanly."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("ascii").split(None, 2)
        except ValueError as exc:
            raise ServeError(f"malformed request line {line!r}") from exc
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError as exc:
                    raise ServeError(
                        f"bad content-length {value.strip()!r}"
                    ) from exc
        if length > _MAX_BODY:
            raise ServeError(f"request body of {length} bytes exceeds "
                             f"the {_MAX_BODY}-byte limit")
        payload = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method.upper(), path, query, payload

    @staticmethod
    def _encode_response(status: int, doc: "dict[str, Any] | str") -> bytes:
        if isinstance(doc, str):
            # pre-rendered text body (the Prometheus exposition format)
            body = doc.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            # canonical JSON keeps replies byte-stable for identical
            # requests
            body = json.dumps(
                doc, sort_keys=True, separators=(",", ":"), allow_nan=False
            ).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        return head + body

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status = 500
        doc: "dict[str, Any] | str" = {"error": "internal error"}
        tracer = get_tracer()
        registry = self.registry
        admitted = False
        t0 = time.perf_counter()
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, query, payload = parsed
            if self.draining:
                status, doc = 503, {"error": "daemon is draining"}
                self.rejected += 1
                registry.inc("serve.rejected")
                if tracer.enabled:
                    tracer.event(
                        obs_events.EV_SERVE_REJECT,
                        reason="draining", http_status=503,
                    )
            elif self.inflight >= self.settings.max_inflight:
                status, doc = 429, {
                    "error": f"at capacity ({self.settings.max_inflight} "
                             "requests in flight); retry with backoff"
                }
                self.rejected += 1
                registry.inc("serve.rejected")
                if tracer.enabled:
                    tracer.event(
                        obs_events.EV_SERVE_REJECT,
                        reason="backpressure", http_status=429,
                    )
            else:
                admitted = True
                self.inflight += 1
                self.requests += 1
                registry.inc("serve.requests")
                registry.set_gauge("serve.inflight", self.inflight)
                self._idle.clear()
                body: "dict[str, Any] | None" = None
                if payload:
                    try:
                        decoded = json.loads(payload)
                    except json.JSONDecodeError as exc:
                        raise ServeError(
                            f"request body is not valid JSON: {exc}"
                        ) from exc
                    if not isinstance(decoded, dict):
                        raise ServeError("request body must be a JSON object")
                    body = decoded
                with tracer.span(
                    obs_events.SPAN_SERVE_REQUEST, method=method, path=path
                ):
                    status, doc = await self._dispatch(
                        method, path, body, query
                    )
        except ServeError as exc:
            status, doc = 400, {"error": str(exc)}
        except asyncio.IncompleteReadError:
            return  # peer hung up mid-request; nothing to answer
        except ReproError as exc:
            status, doc = 500, {"error": str(exc)}
        finally:
            if admitted:
                self.inflight -= 1
                registry.set_gauge("serve.inflight", self.inflight)
                registry.observe(
                    "serve.request_seconds", time.perf_counter() - t0
                )
                if self.inflight == 0:
                    self._idle.set()
            try:
                writer.write(self._encode_response(status, doc))
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (BrokenPipeError, ConnectionResetError) as exc:
                # the peer is gone; log and keep serving everyone else
                logger.debug("serve: peer vanished mid-reply: %s", exc)

    # -- lifecycle ----------------------------------------------------------

    def _begin_serving(self) -> None:
        """Shared start-up: uptime clock, global registry, sample tick."""
        self.started = time.monotonic()
        self._previous_registry = set_registry(self.registry)
        self._sampler = asyncio.get_running_loop().create_task(
            self._sample_loop()
        )

    async def _end_serving(self) -> None:
        """Shared teardown: stop sampling, restore the global registry."""
        if self._sampler is not None:
            self._sampler.cancel()
            try:
                await self._sampler
            except asyncio.CancelledError:
                pass
            self._sampler = None
        set_registry(self._previous_registry)
        self._previous_registry = None

    async def _sample_loop(self) -> None:
        """Append one ring-series point per metric every second."""
        while True:
            await asyncio.sleep(_SAMPLE_INTERVAL)
            self.registry.sample()

    def request_drain(self) -> None:
        """Begin shutdown: refuse new work, let in-flight work land."""
        if not self.draining:
            self.draining = True
            logger.info("serve: draining (%d in flight)", self.inflight)
            self._stopped.set()

    def _dump_flight(self, recorder: FlightRecorder) -> None:
        """SIGUSR2 loop callback: dump the flight ring off the loop.

        The dump's atomic-write dance is disk I/O, so it runs on a
        worker thread; the task is held in ``_flight_dumps`` until done
        so it cannot be garbage-collected mid-write.
        """
        task = asyncio.get_running_loop().create_task(
            asyncio.to_thread(recorder.dump, "sigusr2")
        )
        self._flight_dumps.add(task)
        task.add_done_callback(self._flight_dumps.discard)

    async def serve_forever(
        self, on_ready: "Callable[[int], None] | None" = None
    ) -> None:
        """Run until SIGTERM/SIGINT, then drain and return.

        ``on_ready`` is called with the bound port once the listener is
        accepting -- the CLI uses it to announce readiness on stdout so
        scripted callers can wait for the line instead of polling.

        While serving, the CLI flight recorder's synchronous ``SIGUSR2``
        handler (which writes its dump on whatever the main thread was
        doing -- here, the event loop) is replaced by a loop-registered
        callback that pushes the dump to a worker thread; the original
        handler is restored on exit so post-drain CLI code keeps its
        crash dumps.
        """
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.request_drain)
        recorder = get_flight()
        flight_signum = getattr(signal, "SIGUSR2", None)
        if recorder is not None and flight_signum is not None:
            loop.add_signal_handler(
                flight_signum, self._dump_flight, recorder
            )
        self.batcher.start()
        self._begin_serving()
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port
        )
        if on_ready is not None:
            on_ready(self.port)
        try:
            await self._stopped.wait()
            # listener stays open through the drain so late requests get
            # an orderly 503 instead of a connection refusal
            await self._idle.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            await self.batcher.stop()
            if self._flight_dumps:
                await asyncio.gather(
                    *self._flight_dumps, return_exceptions=True
                )
            await self._end_serving()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
            if recorder is not None and flight_signum is not None:
                loop.remove_signal_handler(flight_signum)
                recorder.install_signal_handler()

    @property
    def port(self) -> int:
        """The bound port (resolves 0 to the kernel's pick)."""
        if self._server is None or not self._server.sockets:
            return self.settings.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start answering, without installing signal handlers.

        Test harnesses use this with :meth:`stop` for in-process
        lifecycle control; ``repro serve`` uses :meth:`serve_forever`.
        """
        self.batcher.start()
        self._begin_serving()
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port
        )

    async def stop(self) -> None:
        """Drain in-flight work and release the listener (test harness)."""
        self.request_drain()
        await self._idle.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()
        await self._end_serving()
