"""The certificate daemon: a zero-dependency asyncio HTTP front end.

``repro serve`` binds this server to a host/port and answers three
routes over plain HTTP/1.1 (parsed here with :mod:`asyncio` streams --
no web framework, matching the repo's stdlib-only rule):

``POST /v1/query``
    Body: one :class:`~repro.serve.protocol.ServeRequest` document.
    The request is mapped to a farm job, resolved through the
    :class:`~repro.serve.cache.ServeCache` (memory -> store ->
    batched compute on the pre-fork pool), and answered with a
    :class:`~repro.serve.protocol.ServeResponse`.  Identical requests
    return byte-identical ``result`` documents; only the envelope's
    ``source`` differs between cold and warm calls.
``GET /healthz``
    Liveness: ``{"status": "ok"}`` (``"draining"`` during shutdown).
``GET /statsz``
    Cache/batcher/store counters, for the load generator and CI smoke.

Operational behaviour, mirroring the farm runner's discipline:

* **Backpressure** -- at most ``max_inflight`` requests are admitted;
  beyond that the daemon answers ``429`` immediately (with an
  ``EV_SERVE_REJECT`` event) instead of queueing unboundedly.
* **Timeouts** -- a request that exceeds ``request_timeout`` answers
  ``504``; the underlying job keeps its own per-job pool timeout.
* **Graceful drain** -- SIGTERM/SIGINT stop the listener, answer new
  requests ``503``, wait for in-flight work to land (results are
  persisted to the store as they complete, like the farm's
  SIGINT-flush), then exit.
* **Broken peers** -- a client that disappears mid-reply
  (``BrokenPipeError``/``ConnectionResetError``) costs only its own
  connection handler; the daemon keeps serving.

Every admitted request runs under a ``serve.request`` span, so one
trace file tells the whole story: request -> cache decision -> batch
dispatch -> farm job -> store put.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
from typing import Any, Callable

from ..errors import ReproError, ServeError
from ..farm.store import ArtifactStore
from ..obs import events as obs_events
from ..obs.trace import get_tracer
from . import protocol
from .batcher import Batcher
from .cache import ServeCache

__all__ = ["ServeSettings", "CertificateServer"]

logger = logging.getLogger("repro.serve")

#: Largest request body the daemon will read, in bytes.  Big enough for
#: an embedded serialised circuit, small enough to bound memory.
_MAX_BODY = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ServeSettings:
    """Tunables of one daemon instance, with serving defaults."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8642,
        workers: int = 2,
        max_inflight: int = 64,
        max_batch: int = 32,
        batch_delay: float = 0.01,
        request_timeout: float = 300.0,
        job_timeout: "float | None" = None,
        memory_size: int = 1024,
    ):
        self.host = host
        self.port = int(port)
        self.workers = max(1, int(workers))
        self.max_inflight = max(1, int(max_inflight))
        self.max_batch = max(1, int(max_batch))
        self.batch_delay = max(0.0, float(batch_delay))
        self.request_timeout = max(0.1, float(request_timeout))
        self.job_timeout = job_timeout
        self.memory_size = max(0, int(memory_size))


class CertificateServer:
    """One daemon: listener, cache, batcher, and drain choreography."""

    def __init__(self, store: ArtifactStore, settings: "ServeSettings | None" = None):
        self.store = store
        self.settings = settings or ServeSettings()
        self.cache = ServeCache(store, memory_size=self.settings.memory_size)
        self.batcher = Batcher(
            workers=self.settings.workers,
            max_batch=self.settings.max_batch,
            max_delay=self.settings.batch_delay,
            job_timeout=self.settings.job_timeout,
            retries=0,
        )
        self.draining = False
        self.inflight = 0
        self.requests = 0
        self.rejected = 0
        self._server: "asyncio.base_events.Server | None" = None
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()

    # -- request plumbing ---------------------------------------------------

    async def _compute(self, job: Any) -> dict[str, Any]:
        return await self.batcher.submit(job)

    async def handle_query(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """Resolve one parsed request body to ``(http_status, document)``."""
        request = protocol.request_from_json(body)
        job = request.job()
        key = job.key()
        try:
            result, source = await asyncio.wait_for(
                self.cache.lookup(job, self._compute),
                self.settings.request_timeout,
            )
        except asyncio.TimeoutError:
            return 504, protocol.ServeResponse(
                op=request.op,
                key=key,
                status="error",
                error=(
                    f"request exceeded {self.settings.request_timeout:g}s; "
                    "the job may still complete and land in the store"
                ),
            ).to_json()
        except ServeError as exc:
            return 500, protocol.ServeResponse(
                op=request.op, key=key, status="error", error=str(exc)
            ).to_json()
        return 200, protocol.ServeResponse(
            op=request.op, key=key, status="ok", source=source, result=result
        ).to_json()

    def stats_document(self) -> dict[str, Any]:
        """The ``/statsz`` body: cache, batcher, and store counters."""
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "status": "draining" if self.draining else "ok",
            "requests": self.requests,
            "rejected": self.rejected,
            "inflight": self.inflight,
            "cache": dict(self.cache.counters),
            "batches": self.batcher.batches,
            "dispatched": self.batcher.dispatched,
            "store": {
                "hits": self.store.cache_hits,
                "misses": self.store.cache_misses,
            },
        }

    async def _dispatch(
        self, method: str, path: str, body: "dict[str, Any] | None"
    ) -> tuple[int, dict[str, Any]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, {"status": "draining" if self.draining else "ok"}
        if path == "/statsz":
            if method != "GET":
                return 405, {"error": "statsz is GET-only"}
            return 200, self.stats_document()
        if path == "/v1/query":
            if method != "POST":
                return 405, {"error": "query is POST-only"}
            if body is None:
                return 400, {"error": "query requires a JSON body"}
            return await self.handle_query(body)
        return 404, {"error": f"no route {path!r}"}

    # -- HTTP/1.1 over asyncio streams --------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "tuple[str, str, bytes] | None":
        """Parse one request; ``None`` when the peer closed cleanly."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("ascii").split(None, 2)
        except ValueError as exc:
            raise ServeError(f"malformed request line {line!r}") from exc
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError as exc:
                    raise ServeError(
                        f"bad content-length {value.strip()!r}"
                    ) from exc
        if length > _MAX_BODY:
            raise ServeError(f"request body of {length} bytes exceeds "
                             f"the {_MAX_BODY}-byte limit")
        payload = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], payload

    @staticmethod
    def _encode_response(status: int, doc: dict[str, Any]) -> bytes:
        # canonical JSON keeps replies byte-stable for identical requests
        body = json.dumps(
            doc, sort_keys=True, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        return head + body

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status = 500
        doc: dict[str, Any] = {"error": "internal error"}
        tracer = get_tracer()
        admitted = False
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, payload = parsed
            if self.draining:
                status, doc = 503, {"error": "daemon is draining"}
                self.rejected += 1
                if tracer.enabled:
                    tracer.event(
                        obs_events.EV_SERVE_REJECT,
                        reason="draining", http_status=503,
                    )
            elif self.inflight >= self.settings.max_inflight:
                status, doc = 429, {
                    "error": f"at capacity ({self.settings.max_inflight} "
                             "requests in flight); retry with backoff"
                }
                self.rejected += 1
                if tracer.enabled:
                    tracer.event(
                        obs_events.EV_SERVE_REJECT,
                        reason="backpressure", http_status=429,
                    )
            else:
                admitted = True
                self.inflight += 1
                self.requests += 1
                self._idle.clear()
                body: "dict[str, Any] | None" = None
                if payload:
                    try:
                        decoded = json.loads(payload)
                    except json.JSONDecodeError as exc:
                        raise ServeError(
                            f"request body is not valid JSON: {exc}"
                        ) from exc
                    if not isinstance(decoded, dict):
                        raise ServeError("request body must be a JSON object")
                    body = decoded
                with tracer.span(
                    obs_events.SPAN_SERVE_REQUEST, method=method, path=path
                ):
                    status, doc = await self._dispatch(method, path, body)
        except ServeError as exc:
            status, doc = 400, {"error": str(exc)}
        except asyncio.IncompleteReadError:
            return  # peer hung up mid-request; nothing to answer
        except ReproError as exc:
            status, doc = 500, {"error": str(exc)}
        finally:
            if admitted:
                self.inflight -= 1
                if self.inflight == 0:
                    self._idle.set()
            try:
                writer.write(self._encode_response(status, doc))
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (BrokenPipeError, ConnectionResetError) as exc:
                # the peer is gone; log and keep serving everyone else
                logger.debug("serve: peer vanished mid-reply: %s", exc)

    # -- lifecycle ----------------------------------------------------------

    def request_drain(self) -> None:
        """Begin shutdown: refuse new work, let in-flight work land."""
        if not self.draining:
            self.draining = True
            logger.info("serve: draining (%d in flight)", self.inflight)
            self._stopped.set()

    async def serve_forever(
        self, on_ready: "Callable[[int], None] | None" = None
    ) -> None:
        """Run until SIGTERM/SIGINT, then drain and return.

        ``on_ready`` is called with the bound port once the listener is
        accepting -- the CLI uses it to announce readiness on stdout so
        scripted callers can wait for the line instead of polling.
        """
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.request_drain)
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port
        )
        if on_ready is not None:
            on_ready(self.port)
        try:
            await self._stopped.wait()
            # listener stays open through the drain so late requests get
            # an orderly 503 instead of a connection refusal
            await self._idle.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            await self.batcher.stop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)

    @property
    def port(self) -> int:
        """The bound port (resolves 0 to the kernel's pick)."""
        if self._server is None or not self._server.sockets:
            return self.settings.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start answering, without installing signal handlers.

        Test harnesses use this with :meth:`stop` for in-process
        lifecycle control; ``repro serve`` uses :meth:`serve_forever`.
        """
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port
        )

    async def stop(self) -> None:
        """Drain in-flight work and release the listener (test harness)."""
        self.request_drain()
        await self._idle.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()
