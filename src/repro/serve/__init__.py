"""The certificate service: an async, cache-fronted daemon over the farm.

``repro serve`` turns the repository's attack/verify machinery into a
long-lived queryable service.  A request names a farm job (an adversary
run against a network, or a 0-1 verification of a registry sorter); the
daemon answers from an in-process LRU, the content-addressed artifact
store (revalidated through the job's own trust boundary), or -- on a
cold miss -- by coalescing jobs into batches on the pre-fork worker
pool.  Identical requests return byte-identical certificate documents.

Layering (each module depends only on those above it):

:mod:`~repro.serve.protocol`
    The versioned wire schema, shared with ``repro verify --json``.
:mod:`~repro.serve.cache`
    Read-through memory -> store -> compute lookup with single-flight
    deduplication of concurrent identical requests.
:mod:`~repro.serve.batcher`
    Cold-miss coalescing onto :func:`repro.farm.runner.run_jobs`.
:mod:`~repro.serve.server`
    The asyncio HTTP front end: backpressure, timeouts, graceful drain.
:mod:`~repro.serve.client`
    Stdlib client speaking the protocol.
:mod:`~repro.serve.loadgen`
    Closed-loop load generator reporting p50/p99 and certificates/sec.
"""

from .batcher import Batcher
from .cache import ServeCache
from .client import ServeClient, ServeHTTPError
from .loadgen import LOADGEN_FORMAT, LoadReport, default_mix, run_load
from .protocol import (
    PROTOCOL_VERSION,
    SERVE_OPS,
    ServeRequest,
    ServeResponse,
    request_from_json,
    response_from_json,
    verdict_document,
)
from .server import STATSZ_FORMAT, CertificateServer, ServeSettings

__all__ = [
    "PROTOCOL_VERSION",
    "STATSZ_FORMAT",
    "SERVE_OPS",
    "ServeRequest",
    "ServeResponse",
    "request_from_json",
    "response_from_json",
    "verdict_document",
    "ServeCache",
    "Batcher",
    "CertificateServer",
    "ServeSettings",
    "ServeClient",
    "ServeHTTPError",
    "LOADGEN_FORMAT",
    "LoadReport",
    "default_mix",
    "run_load",
]
