"""The shape rule catalog: dtype/ndim discipline for the NumPy layer.

Mirrors the registry shape of :mod:`repro.race.rules` (stable
``shape/name`` ids, severity, one-line summary), but each rule reads a
:class:`ShapeAnalysis` -- the built
:class:`~repro.flow.graph.Program`, the dtype × ndim model of
:mod:`repro.shape.model`, and the :mod:`repro.perf` cost model for hot
gating.  Every finding points at the concrete allocation, operation or
comparison the interpreter recorded, so it is checkable by reading the
named line.

``shape/object-dtype-array``
    A constructor (or ``.astype``) provably produces an object-dtype
    array: element math falls back to Python objects, hashes and
    certificates stop being well-defined, and every kernel silently
    deoptimises.  ``None`` leaves and ragged literals infer to object
    exactly as NumPy does.
``shape/unpinned-dtype-constructor``
    A default-dtype-sensitive allocator (``zeros``/``empty``/
    ``arange``/...) in *hot* code (effective loop depth >= 2 per the
    repro.perf cost model) without ``dtype=``: the value silently lands
    in float64 (or whatever the arguments imply), and the vectorization
    arc needs those dtypes pinned before kernels can rely on them.
``shape/implicit-upcast``
    On an integer-exactness path (``repro/core/``, ``repro/networks/``,
    ``repro/analysis/``) an integer array meets float arithmetic -- a
    float operand, or ``/`` true division -- and the result silently
    upcasts: above 2**53 the values stop being exact, and certificate
    bytes drift.  ``//`` or an explicit ``.astype`` is the sanctioned
    spelling.  The ``uint64`` + signed-int meeting (NumPy promotes to
    float64!) is the same defect and fires here too.
``shape/broadcast-mismatch``
    Two operands with statically-known shapes that provably cannot
    broadcast: the line raises ``ValueError`` on first execution with
    real data.
``shape/needless-copy``
    Conversion churn: ``list(x.tolist())``, ``np.asarray`` of a fresh
    conversion, ``.copy()`` on an ``np.array`` result (which already
    copied), ``.astype`` chained onto a conversion that could have
    pinned the dtype itself, or ``np.asarray(...).copy()`` where a
    single ``np.array(..., dtype=...)`` does both jobs in one pass.
``shape/ndim-mismatch``
    An ``axis=`` argument or a scalar-index chain that provably exceeds
    the operand's rank: ``AxisError``/``IndexError`` waiting for the
    first real input.
``shape/float-compare-on-int-path``
    On an integer-exactness path an integer array is compared against a
    float (a float literal, a float-dtype operand, or via
    ``np.isclose``): exact integer data never needs tolerance
    comparison, and its presence means some producer upstream already
    leaked into float.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..flow.graph import Program
from ..perf.costmodel import CostModel, build_cost_model
from ..sanitize.diagnostics import Diagnostic, Severity, SourceLocation
from ..sanitize.engine import anchored_path
from .model import DEFAULT_SENSITIVE, ShapeModel, dtype_kind

__all__ = [
    "ShapeRule",
    "SHAPE_RULES",
    "shape_rule",
    "ShapeAnalysis",
    "INT_EXACT_SCOPE",
    "HOT_DEPTH",
]

#: Where arrays carry certificate-bearing integer data: the adversary
#: core, the network evaluators, and the analyses re-verified from
#: archived certificates.  Matches the determinism scope of the
#: per-file sanitize rules plus the network evaluation layer.
INT_EXACT_SCOPE = (
    "repro/core/",
    "repro/networks/",
    "repro/analysis/",
)

#: Effective loop depth at which an unpinned constructor is "hot",
#: matching :data:`repro.perf.rules.HOT_DEPTH`.
HOT_DEPTH = 2


@dataclass
class ShapeAnalysis:
    """The program plus every shape summary the rules read."""

    program: Program
    model: ShapeModel
    cost: CostModel = field(default_factory=CostModel)

    @classmethod
    def build(cls, program: Program) -> "ShapeAnalysis":
        return cls(
            program=program,
            model=ShapeModel.build(program),
            cost=build_cost_model(program),
        )

    def dtype_counts(self) -> dict[str, int]:
        """Histogram of inferred constructor dtypes (for reports)."""
        return self.model.dtype_counts()

    def constructor_count(self) -> int:
        """How many array-allocating sites the interpreter saw."""
        return sum(
            len(f.constructors) for f in self.model.facts.values()
        )


@dataclass(frozen=True)
class ShapeRule:
    """One registered rule: id, default severity, summary, checker."""

    id: str
    severity: Severity
    summary: str
    check: Callable[[ShapeAnalysis], Iterable[Diagnostic]]


#: The global registry, keyed by rule id, in registration order.
SHAPE_RULES: dict[str, ShapeRule] = {}


def shape_rule(
    rule_id: str, severity: Severity, summary: str
) -> Callable[[Callable[[ShapeAnalysis], Iterable[Diagnostic]]], Callable]:
    """Decorator registering a rule function under ``rule_id``."""

    def register(
        fn: Callable[[ShapeAnalysis], Iterable[Diagnostic]],
    ) -> Callable:
        SHAPE_RULES[rule_id] = ShapeRule(
            id=rule_id, severity=severity, summary=summary, check=fn
        )
        return fn

    return register


def _in_scope(path: str) -> bool:
    return anchored_path(path).startswith(INT_EXACT_SCOPE)


def _each_facts(analysis: ShapeAnalysis):
    for qualname in sorted(analysis.model.facts):
        yield qualname, analysis.model.facts[qualname]


def _loc(site) -> SourceLocation:
    return SourceLocation(path=site.path, line=site.line, col=site.col)


# ---------------------------------------------------------------------------
# the rules


@shape_rule(
    "shape/object-dtype-array",
    Severity.ERROR,
    "an array provably carries dtype=object",
)
def check_object_dtype(analysis: ShapeAnalysis) -> Iterator[Diagnostic]:
    for qualname, facts in _each_facts(analysis):
        for site in facts.constructors:
            if site.value.dtype != "object":
                continue
            if site.pinned:
                why = "dtype=object is explicit"
            else:
                why = (
                    "the literal holds None or ragged rows, so NumPy "
                    "falls back to dtype=object"
                )
            yield Diagnostic(
                rule="shape/object-dtype-array",
                severity=Severity.ERROR,
                message=(
                    f"`{qualname}` builds an object-dtype array via "
                    f"np.{site.func} ({why}): element access runs "
                    "Python-object math and certificate hashes stop "
                    "being well-defined; keep the data numeric or use "
                    "a plain list"
                ),
                location=_loc(site),
            )


@shape_rule(
    "shape/unpinned-dtype-constructor",
    Severity.ERROR,
    "hot allocator relies on a default dtype",
)
def check_unpinned_constructor(
    analysis: ShapeAnalysis,
) -> Iterator[Diagnostic]:
    for qualname, facts in _each_facts(analysis):
        for site in facts.constructors:
            if site.pinned or site.func not in DEFAULT_SENSITIVE:
                continue
            depth = analysis.cost.effective_depth(qualname, site.line)
            if depth < HOT_DEPTH:
                continue
            default = (
                "int64/float64 depending on its arguments"
                if site.func in ("arange", "full", "fromiter")
                else "float64"
            )
            yield Diagnostic(
                rule="shape/unpinned-dtype-constructor",
                severity=Severity.ERROR,
                message=(
                    f"hot np.{site.func} call in `{qualname}` "
                    f"(effective loop depth {depth}) defaults to "
                    f"{default}; pin dtype= so the vectorized kernels "
                    "keep exact, platform-independent semantics"
                ),
                location=_loc(site),
            )


@shape_rule(
    "shape/implicit-upcast",
    Severity.ERROR,
    "integer array silently upcasts to float on a certificate path",
)
def check_implicit_upcast(analysis: ShapeAnalysis) -> Iterator[Diagnostic]:
    for qualname, facts in _each_facts(analysis):
        if not facts.ops:
            continue
        if not _in_scope(facts.ops[0].path):
            continue
        for site in facts.ops:
            int_side = site.left.is_int_array or site.right.is_int_array
            if not (int_side and site.result.is_float_like):
                continue
            if site.op == "truediv":
                how = (
                    "`/` true-divides it into float64; use `//` for "
                    "exact integer division or make the cast explicit "
                    "with .astype"
                )
            elif "uint64" in (site.left.dtype, site.right.dtype):
                how = (
                    "uint64 meets a signed integer, which NumPy "
                    "promotes to float64 (no int128); convert one "
                    "side with .astype(np.int64) first"
                )
            else:
                floaty = (
                    site.right.dtype
                    if site.left.is_int_array
                    else site.left.dtype
                )
                how = (
                    f"a {floaty or 'float'} operand drags the result "
                    f"to {site.result.dtype or 'float'}; keep the "
                    "operand integral or make the upcast explicit"
                )
            yield Diagnostic(
                rule="shape/implicit-upcast",
                severity=Severity.ERROR,
                message=(
                    f"integer array upcasts to float in `{qualname}`: "
                    f"{how} -- above 2**53 the values stop being "
                    "exact and certificate bytes drift"
                ),
                location=_loc(site),
            )


@shape_rule(
    "shape/broadcast-mismatch",
    Severity.ERROR,
    "statically-known shapes cannot broadcast",
)
def check_broadcast(analysis: ShapeAnalysis) -> Iterator[Diagnostic]:
    for qualname, facts in _each_facts(analysis):
        for site in facts.broadcast_violations:
            left = "x".join(str(d) if d is not None else "?"
                            for d in site.left)
            right = "x".join(str(d) if d is not None else "?"
                             for d in site.right)
            yield Diagnostic(
                rule="shape/broadcast-mismatch",
                severity=Severity.ERROR,
                message=(
                    f"shapes ({left}) and ({right}) cannot broadcast "
                    f"in `{qualname}`: this line raises ValueError on "
                    "the first real input"
                ),
                location=_loc(site),
            )


_COPY_MESSAGES = {
    "list-of-tolist": (
        "list() wraps .tolist(), which already returns a new list; "
        "drop the outer list()"
    ),
    "copy-of-asarray": (
        "np.asarray(...).copy() materialises the data twice; "
        "np.array(..., dtype=...) converts and copies in one pass"
    ),
    "copy-of-array": (
        ".copy() of an np.array(...) result copies twice: np.array "
        "already allocated fresh storage"
    ),
}


@shape_rule(
    "shape/needless-copy",
    Severity.ERROR,
    "conversion churn: the same data is materialised twice",
)
def check_needless_copy(analysis: ShapeAnalysis) -> Iterator[Diagnostic]:
    for qualname, facts in _each_facts(analysis):
        for site in facts.copies:
            detail = _COPY_MESSAGES.get(site.pattern)
            if detail is None:
                outer, _, inner = site.pattern.partition("-of-")
                detail = (
                    f"np.{outer} re-converts the fresh result of a "
                    f"{inner} call; fold the dtype/copy into the inner "
                    "conversion"
                )
            yield Diagnostic(
                rule="shape/needless-copy",
                severity=Severity.ERROR,
                message=f"needless copy in `{qualname}`: {detail}",
                location=_loc(site),
            )


@shape_rule(
    "shape/ndim-mismatch",
    Severity.ERROR,
    "axis or index provably exceeds the array's rank",
)
def check_ndim(analysis: ShapeAnalysis) -> Iterator[Diagnostic]:
    for qualname, facts in _each_facts(analysis):
        for site in facts.ndim_violations:
            yield Diagnostic(
                rule="shape/ndim-mismatch",
                severity=Severity.ERROR,
                message=(
                    f"{site.what} applied to a {site.ndim}-D array in "
                    f"`{qualname}`: this raises on the first real "
                    "input"
                ),
                location=_loc(site),
            )


@shape_rule(
    "shape/float-compare-on-int-path",
    Severity.ERROR,
    "integer array compared against float on a certificate path",
)
def check_float_compare(analysis: ShapeAnalysis) -> Iterator[Diagnostic]:
    for qualname, facts in _each_facts(analysis):
        if not facts.compares:
            continue
        if not _in_scope(facts.compares[0].path):
            continue
        for site in facts.compares:
            int_side = site.left.is_int_array or site.right.is_int_array
            if not int_side:
                continue
            other = (
                site.right if site.left.is_int_array else site.left
            )
            floaty = site.float_const or dtype_kind(other.dtype) in (
                "float", "complex"
            )
            if site.isclose:
                yield Diagnostic(
                    rule="shape/float-compare-on-int-path",
                    severity=Severity.ERROR,
                    message=(
                        f"np.isclose on an integer array in "
                        f"`{qualname}`: exact integer data never "
                        "needs tolerance comparison -- use == and "
                        "keep the path in int64"
                    ),
                    location=_loc(site),
                )
            elif floaty:
                yield Diagnostic(
                    rule="shape/float-compare-on-int-path",
                    severity=Severity.ERROR,
                    message=(
                        f"integer array compared against a float in "
                        f"`{qualname}`: some producer upstream "
                        "leaked into float; pin the producer's dtype "
                        "and compare integers exactly"
                    ),
                    location=_loc(site),
                )
