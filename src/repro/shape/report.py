"""Shape reports: aggregation, text/JSON rendering, model serialization.

A :class:`ShapeReport` is the result of one whole-program dtype/ndim
analysis run: the sorted diagnostics plus the sizes of the analysed
program and its inferred-dtype histogram, sharing the severity
accessors, rendering helpers and exit-code convention of
:class:`repro.diagnostics.DiagnosticReport` with the other analyzer
reports.  ``SHAPE_FORMAT`` versions both the report JSON and the
``--graph`` model serialization; the report dataclass is pinned in the
sanitize schema fingerprint registry like every other persisted format
in the tree (``repro sanitize --fix`` re-pins after a deliberate,
version-bumped change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..diagnostics import DiagnosticReport
from ..sanitize.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rules import ShapeAnalysis

__all__ = ["SHAPE_FORMAT", "ShapeReport", "model_json"]

#: Version of the shape report and model JSON documents.
SHAPE_FORMAT = 1


@dataclass
class ShapeReport(DiagnosticReport):
    """The outcome of one whole-program shape analysis.

    ``targets`` are the paths as requested; ``files`` and ``functions``
    size the analysed program; ``arrays`` counts the array-allocating
    sites the interpreter modelled and ``dtypes`` histograms their
    inferred dtypes (an analysis that silently lost its constructor
    semantics is self-diagnosing: everything lands in ``unknown``);
    ``suppressed`` counts baseline-grandfathered findings hidden from
    ``diagnostics``.
    """

    targets: list[str] = field(default_factory=list)
    files: int = 0
    functions: int = 0
    arrays: int = 0
    dtypes: dict[str, int] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0

    def format_text(self) -> str:
        """Full human-readable report."""
        pinned = ", ".join(
            f"{label}: {self.dtypes[label]}"
            for label in sorted(self.dtypes)
            if label != "unknown"
        )
        return self.render_text(
            f"shape {' '.join(self.targets)}: "
            f"{self.files} file{'s' if self.files != 1 else ''}, "
            f"{self.functions} functions, {self.arrays} arrays"
            + (f" ({pinned})" if pinned else "")
        )

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible report document."""
        return {
            "format": SHAPE_FORMAT,
            "targets": self.targets,
            "files": self.files,
            "functions": self.functions,
            "arrays": self.arrays,
            "dtypes": {k: self.dtypes[k] for k in sorted(self.dtypes)},
            **self.json_tail(),
        }


def _value_json(value) -> dict[str, Any]:
    doc: dict[str, Any] = {"kind": value.kind}
    if value.dtype is not None:
        doc["dtype"] = value.dtype
    if value.ndim is not None:
        doc["ndim"] = value.ndim
    if value.shape is not None:
        doc["shape"] = list(value.shape)
    return doc


def model_json(analysis: "ShapeAnalysis") -> dict[str, Any]:
    """Serialise the dtype/ndim model (``repro shape --graph``).

    One entry per function with its return summary and every
    constructor site the interpreter recorded (allocator, line, whether
    the dtype is pinned, the inferred abstract value).  Everything
    iterates in sorted order, so two runs over the same tree emit
    bit-identical documents.
    """
    model = analysis.model
    functions: list[dict[str, Any]] = []
    for qualname in sorted(model.facts):
        facts = model.facts[qualname]
        entry: dict[str, Any] = {
            "id": qualname,
            "returns": _value_json(facts.returns),
            "constructors": [
                {
                    "func": site.func,
                    "line": site.line,
                    "pinned": site.pinned,
                    "value": _value_json(site.value),
                }
                for site in facts.constructors
            ],
            "ops": len(facts.ops),
            "compares": len(facts.compares),
        }
        functions.append(entry)
    return {
        "format": SHAPE_FORMAT,
        "functions": functions,
        "dtypes": {
            k: analysis.dtype_counts()[k]
            for k in sorted(analysis.dtype_counts())
        },
    }
