"""The shape engine: discovery, program construction, rules, report.

Entry point :func:`analyze_paths` mirrors
:func:`repro.race.engine.analyze_paths` -- deterministic (sorted) file
discovery, the ratcheted baseline, ``# sanitize: ok`` pragma
suppression -- over the same whole-program unit: every parseable file
joins one :class:`~repro.flow.graph.Program`, the abstract
interpretation and its summary fixpoint run once, and each rule reads
the global result.

Determinism contract: the report depends only on the *set* of files and
their contents, never on discovery order (property-tested in
``tests/shape/test_order_independence.py``).  Unparseable files become
``parse/syntax-error`` diagnostics, exactly as in the other analyzers,
and are excluded from the program rather than aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..diagnostics import Baseline, apply_waivers
from ..sanitize.diagnostics import Diagnostic
from ..sanitize.engine import discover_files
from .report import ShapeReport
from .rules import SHAPE_RULES, ShapeAnalysis

__all__ = ["ShapeConfig", "analyze_paths", "build_analysis"]


@dataclass(frozen=True)
class ShapeConfig:
    """Tunables for one shape run.

    ``select`` optionally restricts to rules whose id starts with one
    of the given prefixes (``--select shape/implicit`` etc.), mirroring
    the other analyzer configs.
    """

    select: tuple[str, ...] | None = None

    def rule_enabled(self, rule_id: str) -> bool:
        """True iff ``rule_id`` passes the ``select`` filter."""
        if not self.select:
            return True
        return any(rule_id.startswith(prefix) for prefix in self.select)


def build_analysis(
    paths: Iterable[str | Path], config: ShapeConfig | None = None
) -> tuple[ShapeAnalysis, list[Diagnostic], int]:
    """Build the program and the dtype/ndim model, run the rules.

    Returns the analysis, the raw rule findings (plus parse
    diagnostics), and the number of analysed files.
    """
    from ..flow.engine import _load_contexts
    from ..flow.graph import Program

    cfg = config or ShapeConfig()
    files = discover_files(paths)
    contexts, diagnostics = _load_contexts(files)
    program = Program.build(contexts)
    analysis = ShapeAnalysis.build(program)
    for rule in SHAPE_RULES.values():
        if not cfg.rule_enabled(rule.id):
            continue
        diagnostics.extend(rule.check(analysis))
    return analysis, diagnostics, len(files)


def analyze_paths(
    paths: Iterable[str | Path],
    config: ShapeConfig | None = None,
    baseline: Baseline | None = None,
) -> ShapeReport:
    """Analyse a set of files/directories as one whole program.

    Pragma-suppressed findings are dropped silently (the pragma is the
    documented waiver); baseline-matched findings are dropped from the
    report and exit code but counted in ``report.suppressed`` so a
    grandfathered tree never reads as clean.
    """
    analysis, diagnostics, files = build_analysis(paths, config)
    program = analysis.program
    kept, suppressed = apply_waivers(
        diagnostics, program.contexts, baseline
    )
    return ShapeReport(
        targets=sorted(str(p) for p in paths),
        files=files,
        functions=len(program.functions),
        arrays=analysis.constructor_count(),
        dtypes=analysis.dtype_counts(),
        diagnostics=kept,
        suppressed=suppressed,
    )
