"""Array dtype/shape abstract interpretation for the repro tree itself.

The ROADMAP's vectorization arc replaces per-comparator Python loops
with NumPy layer-matrix kernels under a hard contract: same-seed
certificates stay byte-identical, which means every array on a
certificate-bearing path must keep exact ``int64`` semantics.  The
classic failure modes of that rewrite -- silent ``dtype=object``
fallbacks, int64→float64 upcasts, broadcast surprises, hidden copies --
are all statically detectable.  This package infers a dtype × ndim
lattice for every NumPy value in the tree (constructor dtypes,
``asarray``/``astype`` flows, ufunc promotion, indexing/reduction rank
deltas, propagated interprocedurally through annotated and returned
arrays) and gates seven rules on it.

Layering (docs/SHAPE.md):

* :mod:`repro.shape.model` -- the abstract domain and interpreter:
  per-function environments, dtype promotion (including the
  ``uint64`` + signed-int float64 trap), rank tracking, the
  return-summary fixpoint over the call graph;
* :mod:`repro.shape.rules` -- the rule catalog, hot-gated against the
  :mod:`repro.perf` cost model and scope-gated to the
  integer-exactness directories;
* :mod:`repro.shape.engine` -- discovery, baseline and pragma wiring,
  report assembly;
* :mod:`repro.shape.report` -- the versioned report and ``--graph``
  model serialization.

Run it as ``repro shape src/`` or fold it into a sanitize run with
``repro sanitize --shape src/``.
"""

from .engine import ShapeConfig, analyze_paths, build_analysis
from .model import AbstractValue, ShapeModel, dtype_kind, promote
from .report import SHAPE_FORMAT, ShapeReport, model_json
from .rules import INT_EXACT_SCOPE, SHAPE_RULES, ShapeAnalysis

__all__ = [
    "ShapeConfig",
    "analyze_paths",
    "build_analysis",
    "AbstractValue",
    "ShapeModel",
    "promote",
    "dtype_kind",
    "SHAPE_FORMAT",
    "ShapeReport",
    "model_json",
    "SHAPE_RULES",
    "ShapeAnalysis",
    "INT_EXACT_SCOPE",
]
