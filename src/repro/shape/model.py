"""The dtype × ndim abstract domain and its interpreter.

Every NumPy value the analyser reasons about is an
:class:`AbstractValue` -- a ``kind`` (array, scalar, list, ...) plus a
dtype name, a rank (``ndim``), an optional statically-known ``shape``
and the ``origin`` of the allocation (which conversion built it).  The
per-function interpreter walks each indexed function of the
:class:`~repro.flow.graph.Program` in statement order, tracking an
abstract environment for the locals:

* constructor calls (``np.zeros``, ``np.asarray``, ...) produce arrays
  with the dtype the call pins -- or NumPy's *default* when it does not
  (``float64`` for the allocators, value-dependent for ``arange`` and
  ``np.array`` on literals);
* ufunc-style arithmetic promotes dtypes (including the ``uint64`` +
  signed-int ``float64`` trap) and broadcasts ranks; true division
  always lands in float;
* indexing and reductions shift ``ndim`` (a scalar index removes one
  axis, ``axis=`` reductions remove one, ``.reshape`` re-ranks);
* calls into other indexed functions read that callee's *return
  summary*; the summaries are iterated to a fixpoint over the call
  graph so an array dtype survives helper boundaries, and annotated
  ``np.ndarray`` parameters seed the environment.

Control flow is handled by joining environments at merge points: two
branches that disagree about a dtype meet at *unknown*, never at a
guess, so every recorded fact is a may-must statement the rules can
trust.  Known blind spots, accepted and documented: module-level code
(outside any function), attribute state (``self.x`` arrays), and
containers of arrays are not tracked -- all degrade to *unknown*, which
can only suppress findings, never invent them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from ..flow.graph import FunctionInfo, Program
from ..sanitize.engine import FileContext

__all__ = [
    "AbstractValue",
    "UNKNOWN",
    "ConstructorSite",
    "OpSite",
    "CompareSite",
    "CopySite",
    "NdimViolation",
    "BroadcastViolation",
    "FunctionFacts",
    "ShapeModel",
    "promote",
    "join_value",
    "dtype_kind",
]

#: Fixpoint passes saturate here; the summary lattice is shallow
#: (kind, dtype and ndim each degrade monotonically to unknown), so
#: real trees converge in two or three passes.
MAX_PASSES = 8

_INT_DTYPES = frozenset({"int8", "int16", "int32", "int64"})
_UINT_DTYPES = frozenset({"uint8", "uint16", "uint32", "uint64"})
_FLOAT_DTYPES = frozenset({"float16", "float32", "float64"})
_COMPLEX_DTYPES = frozenset({"complex64", "complex128"})

#: dtype spellings accepted from ``dtype=`` arguments, normalised.
_DTYPE_ALIASES = {
    "bool": "bool",
    "bool_": "bool",
    "int": "int64",
    "intp": "int64",
    "int_": "int64",
    "float": "float64",
    "float_": "float64",
    "double": "float64",
    "complex": "complex128",
    "object": "object",
    "object_": "object",
    "str": "str",
    "str_": "str",
}


def dtype_kind(dtype: str | None) -> str | None:
    """The coarse kind of a dtype name (``int``/``float``/...)."""
    if dtype is None:
        return None
    if dtype == "bool":
        return "bool"
    if dtype in _INT_DTYPES:
        return "int"
    if dtype in _UINT_DTYPES:
        return "uint"
    if dtype in _FLOAT_DTYPES:
        return "float"
    if dtype in _COMPLEX_DTYPES:
        return "complex"
    return dtype  # "object", "str": their own kinds


def _width(dtype: str) -> int:
    digits = "".join(c for c in dtype if c.isdigit())
    return int(digits) if digits else 8


_KIND_RANK = {"bool": 0, "int": 1, "uint": 1, "float": 2, "complex": 3}


def promote(a: str | None, b: str | None) -> str | None:
    """Result dtype of a binary operation, NumPy-style.

    Unknown absorbs (we never guess), ``object`` absorbs (object math
    stays object), and the one promotion surprise worth modelling
    exactly is ``uint64`` meeting a signed int: NumPy has no int128, so
    the result is ``float64`` -- silently inexact above 2**53.
    """
    if a is None or b is None:
        return None
    if a == b:
        return a
    if "object" in (a, b):
        return "object"
    ka, kb = dtype_kind(a), dtype_kind(b)
    if ka not in _KIND_RANK or kb not in _KIND_RANK:
        return None
    if {ka, kb} == {"int", "uint"}:
        unsigned = a if ka == "uint" else b
        signed = a if ka == "int" else b
        if unsigned == "uint64":
            return "float64"
        # the signed type must fit the unsigned range: double its width
        return f"int{min(64, max(2 * _width(unsigned), _width(signed)))}"
    hi, lo = (a, b) if _KIND_RANK[ka] >= _KIND_RANK[kb] else (b, a)
    if dtype_kind(hi) == dtype_kind(lo):
        return hi if _width(hi) >= _width(lo) else lo
    # crossing into float/complex from a 64-bit integer widens fully
    if dtype_kind(hi) in ("float", "complex") and _width(lo) >= 32:
        base = "complex" if dtype_kind(hi) == "complex" else "float"
        return f"{base}{max(_width(hi), 64 if base == 'float' else 128)}"
    return hi


@dataclass(frozen=True)
class AbstractValue:
    """One point of the abstract domain.

    ``kind`` is ``"array"``, ``"scalar"``, ``"list"``, ``"tuple"`` or
    ``"unknown"``; ``dtype``/``ndim``/``shape`` are ``None`` when
    unknown.  ``origin`` remembers which conversion allocated an array
    (``"array"``, ``"asarray"``, ``"astype"``, ``"copy"``,
    ``"tolist"``) so the needless-copy rule can see conversion chains
    through local variables.
    """

    kind: str = "unknown"
    dtype: str | None = None
    ndim: int | None = None
    shape: tuple[int | None, ...] | None = None
    origin: str | None = None
    #: Python literals promote "weakly" (NEP 50): an int literal takes
    #: the array operand's dtype instead of forcing int64.
    weak: bool = False
    #: For ``kind == "instance"``: the class qualname, so method calls
    #: on typed receivers dispatch to that method's return summary.
    cls: str | None = None

    @property
    def is_array(self) -> bool:
        """True iff this value is known to be an ndarray."""
        return self.kind == "array"

    @property
    def is_int_array(self) -> bool:
        """An exact-integer array (the certificate currency)."""
        return self.is_array and dtype_kind(self.dtype) in ("int", "uint")

    @property
    def is_float_like(self) -> bool:
        """True iff the dtype is inexact (float or complex)."""
        return dtype_kind(self.dtype) in ("float", "complex")


UNKNOWN = AbstractValue()


def _scalar(dtype: str, weak: bool = False) -> AbstractValue:
    return AbstractValue(kind="scalar", dtype=dtype, ndim=0, weak=weak)


def _array(
    dtype: str | None = None,
    ndim: int | None = None,
    shape: tuple[int | None, ...] | None = None,
    origin: str | None = None,
) -> AbstractValue:
    if shape is not None and ndim is None:
        ndim = len(shape)
    return AbstractValue(
        kind="array", dtype=dtype, ndim=ndim, shape=shape, origin=origin
    )


def join_value(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Control-flow join: agreement survives, disagreement degrades."""
    if a == b:
        return a
    if a.kind != b.kind:
        return UNKNOWN
    return AbstractValue(
        kind=a.kind,
        dtype=a.dtype if a.dtype == b.dtype else None,
        ndim=a.ndim if a.ndim == b.ndim else None,
        shape=a.shape if a.shape == b.shape else None,
        origin=a.origin if a.origin == b.origin else None,
        weak=a.weak and b.weak,
        cls=a.cls if a.cls == b.cls else None,
    )


def broadcast_shapes(
    a: tuple[int | None, ...], b: tuple[int | None, ...]
) -> tuple[int | None, ...] | None:
    """NumPy broadcasting; ``None`` when the shapes provably conflict."""
    out: list[int | None] = []
    for i in range(1, max(len(a), len(b)) + 1):
        da = a[-i] if i <= len(a) else 1
        db = b[-i] if i <= len(b) else 1
        if da is None or db is None:
            out.append(None)
        elif da == db or db == 1:
            out.append(da)
        elif da == 1:
            out.append(db)
        else:
            return None
        continue
    return tuple(reversed(out))


# ---------------------------------------------------------------------------
# recorded facts


@dataclass(frozen=True)
class ConstructorSite:
    """One array-constructing call (including ``.astype``)."""

    qualname: str
    path: str
    line: int
    col: int
    func: str  # short numpy name: "zeros", "asarray", "astype", ...
    pinned: bool  # dtype explicitly given
    value: AbstractValue


@dataclass(frozen=True)
class OpSite:
    """One arithmetic binary operation touching an array."""

    qualname: str
    path: str
    line: int
    col: int
    op: str  # "add", "truediv", ...
    left: AbstractValue
    right: AbstractValue
    result: AbstractValue


@dataclass(frozen=True)
class CompareSite:
    """One comparison (or ``np.isclose``-family call) touching an array."""

    qualname: str
    path: str
    line: int
    col: int
    left: AbstractValue
    right: AbstractValue
    float_const: bool  # literal float on the non-array side
    isclose: bool = False


@dataclass(frozen=True)
class CopySite:
    """One redundant-conversion witness (the needless-copy patterns)."""

    qualname: str
    path: str
    line: int
    col: int
    pattern: str  # "list-of-tolist" | "copy-of-asarray" | ...


@dataclass(frozen=True)
class NdimViolation:
    """An axis or index that provably exceeds the operand's rank."""

    qualname: str
    path: str
    line: int
    col: int
    what: str  # e.g. "axis=1" or "2 scalar indices"
    ndim: int


@dataclass(frozen=True)
class BroadcastViolation:
    """Two statically-known shapes that cannot broadcast."""

    qualname: str
    path: str
    line: int
    col: int
    left: tuple[int | None, ...]
    right: tuple[int | None, ...]


@dataclass
class FunctionFacts:
    """Everything the interpreter recorded about one function."""

    constructors: list[ConstructorSite] = field(default_factory=list)
    ops: list[OpSite] = field(default_factory=list)
    compares: list[CompareSite] = field(default_factory=list)
    copies: list[CopySite] = field(default_factory=list)
    ndim_violations: list[NdimViolation] = field(default_factory=list)
    broadcast_violations: list[BroadcastViolation] = field(
        default_factory=list
    )
    returns: AbstractValue = UNKNOWN


# ---------------------------------------------------------------------------
# the interpreter

#: Allocators whose dtype silently defaults (float64, or value-shaped
#: for arange/full/fromiter) -- the unpinned-constructor rule's domain.
DEFAULT_SENSITIVE = frozenset(
    {"zeros", "ones", "empty", "full", "arange", "linspace", "eye",
     "identity", "fromiter"}
)

#: Conversions that re-materialise existing data.
_CONVERSIONS = frozenset(
    {"array", "asarray", "ascontiguousarray", "asfortranarray"}
)

_REDUCTIONS = frozenset(
    {"sum", "prod", "min", "max", "amin", "amax", "mean", "std", "var",
     "any", "all", "argmin", "argmax", "count_nonzero", "median"}
)

_FLOAT_REDUCTIONS = frozenset({"mean", "std", "var", "median"})
_BOOL_REDUCTIONS = frozenset({"any", "all"})
_INDEX_REDUCTIONS = frozenset({"argmin", "argmax", "count_nonzero"})

#: Element-wise unaries preserving dtype and rank.
_PRESERVING = frozenset(
    {"abs", "absolute", "negative", "positive", "sort", "flip",
     "diff", "roll", "unique", "cumsum", "clip", "square"}
)

_BIN_UFUNCS = {
    "add": "add", "subtract": "sub", "multiply": "mult",
    "minimum": "min", "maximum": "max", "power": "pow",
    "floor_divide": "floordiv", "true_divide": "truediv",
    "divide": "truediv", "remainder": "mod", "mod": "mod",
}

_BINOP_NAMES = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mult", ast.Div: "truediv",
    ast.FloorDiv: "floordiv", ast.Mod: "mod", ast.Pow: "pow",
    ast.LShift: "lshift", ast.RShift: "rshift", ast.BitOr: "or",
    ast.BitAnd: "and", ast.BitXor: "xor", ast.MatMult: "matmul",
}


class _Interpreter:
    """Abstract interpretation of one function body."""

    def __init__(
        self,
        program: Program,
        ctx: FileContext,
        finfo: FunctionInfo,
        summaries: dict[str, AbstractValue],
    ) -> None:
        self.program = program
        self.ctx = ctx
        self.finfo = finfo
        self.summaries = summaries
        self.facts = FunctionFacts()
        self.env: dict[str, AbstractValue] = {}
        self.returns: list[AbstractValue] = []
        #: the exact ``<name>.copy()`` node under a ``return``, if any
        self._returned_copy: ast.AST | None = None

    # -- plumbing -----------------------------------------------------

    def _site(self, node: ast.AST) -> tuple[str, str, int, int]:
        return (
            self.finfo.qualname,
            self.finfo.path,
            getattr(node, "lineno", self.finfo.line),
            getattr(node, "col_offset", 0),
        )

    def _annotation_value(self, ann: ast.expr | None) -> AbstractValue:
        if ann is None:
            return UNKNOWN
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            text = ann.value
            if text.endswith("ndarray"):
                return _array()
            return UNKNOWN
        resolved = self.ctx.resolve(ann)
        if resolved in ("numpy.ndarray", "numpy.typing.NDArray"):
            return _array()
        if resolved:
            target = self.program.resolve(resolved, self.ctx.module)
            if target is not None and target[0] == "class":
                return AbstractValue(kind="instance", cls=target[1])
        return UNKNOWN

    def run(self) -> FunctionFacts:
        args = self.finfo.node.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        ):
            self.env[arg.arg] = self._annotation_value(arg.annotation)
        if self.finfo.cls is not None and "self" in self.env:
            self.env["self"] = AbstractValue(
                kind="instance", cls=self.finfo.cls
            )
        self._exec_block(self.finfo.node.body)
        summary = UNKNOWN
        if self.returns:
            summary = self.returns[0]
            for val in self.returns[1:]:
                summary = join_value(summary, val)
        elif self._annotation_value(self.finfo.node.returns).is_array:
            summary = _array()
        self.facts.returns = summary
        return self.facts

    # -- statements ---------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _join_env(self, *envs: dict[str, AbstractValue]) -> None:
        merged: dict[str, AbstractValue] = {}
        for name in sorted({n for e in envs for n in e}):
            vals = [e.get(name, UNKNOWN) for e in envs]
            out = vals[0]
            for val in vals[1:]:
                out = join_value(out, val)
            merged[name] = out
        self.env = merged

    def _bind(self, target: ast.expr, value: AbstractValue) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, UNKNOWN)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._eval(target.value)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            value = (
                self._eval(stmt.value)
                if stmt.value is not None
                else self._annotation_value(stmt.annotation)
            )
            if stmt.value is not None and not value.is_array:
                ann = self._annotation_value(stmt.annotation)
                if ann.is_array:
                    value = ann
            self._bind(stmt.target, value)
        elif isinstance(stmt, ast.AugAssign):
            left = (
                self.env.get(stmt.target.id, UNKNOWN)
                if isinstance(stmt.target, ast.Name)
                else self._eval(stmt.target)
            )
            right = self._eval(stmt.value)
            op = _BINOP_NAMES.get(type(stmt.op), "op")
            result = self._binop(stmt, op, left, right)
            self._bind(stmt.target, result)
        elif isinstance(stmt, ast.Return):
            if (
                isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "copy"
                and not stmt.value.args
            ):
                self._returned_copy = stmt.value
            value = self._eval(stmt.value) if stmt.value else UNKNOWN
            self.returns.append(value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            before = dict(self.env)
            self._exec_block(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self._exec_block(stmt.orelse)
            self._join_env(after_body, self.env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self._eval(stmt.iter)
            element = UNKNOWN
            if iterable.is_array and iterable.ndim is not None:
                if iterable.ndim >= 2:
                    element = _array(iterable.dtype, iterable.ndim - 1)
                elif iterable.ndim == 1:
                    element = _scalar(iterable.dtype) if iterable.dtype \
                        else AbstractValue(kind="scalar")
            before = dict(self.env)
            self._bind(stmt.target, element)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            self._join_env(before, self.env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            before = dict(self.env)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            self._join_env(before, self.env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, UNKNOWN)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self._exec_block(stmt.body)
            after_body = self.env
            handler_envs = []
            for handler in stmt.handlers:
                self.env = dict(before)
                self._exec_block(handler.body)
                handler_envs.append(self.env)
            self._join_env(after_body, *handler_envs)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # nested defs/classes run when called; their bodies are indexed
        # as their own functions, so they are skipped here.

    # -- expressions --------------------------------------------------

    def _eval(self, node: ast.expr) -> AbstractValue:
        if isinstance(node, ast.Constant):
            return self._constant(node.value)
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, (ast.List, ast.Set)):
            for elt in node.elts:
                self._eval(elt)
            return AbstractValue(kind="list")
        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                self._eval(elt)
            return AbstractValue(kind="tuple")
        if isinstance(node, ast.Dict):
            for child in (*node.keys, *node.values):
                if child is not None:
                    self._eval(child)
            return AbstractValue(kind="other")
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            op = _BINOP_NAMES.get(type(node.op), "op")
            return self._binop(node, op, left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand)
            if isinstance(node.op, ast.Not):
                return _scalar("bool")
            return operand
        if isinstance(node, ast.BoolOp):
            vals = [self._eval(v) for v in node.values]
            out = vals[0]
            for val in vals[1:]:
                out = join_value(out, val)
            return out
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return join_value(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for gen in node.generators:
                self._eval(gen.iter)
                for cond in gen.ifs:
                    self._eval(cond)
            if isinstance(node, ast.DictComp):
                self._eval(node.key)
                self._eval(node.value)
            else:
                self._eval(node.elt)
            return AbstractValue(kind="list")
        # anything else: evaluate children for their facts, answer unknown
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
        return UNKNOWN

    def _constant(self, value: object) -> AbstractValue:
        if isinstance(value, bool):
            return _scalar("bool", weak=True)
        if isinstance(value, int):
            return _scalar("int64", weak=True)
        if isinstance(value, float):
            return _scalar("float64", weak=True)
        if isinstance(value, complex):
            return _scalar("complex128", weak=True)
        return AbstractValue(kind="other")

    @staticmethod
    def _promote_operands(
        left: AbstractValue, right: AbstractValue
    ) -> str | None:
        """Array-operand promotion honouring NEP 50 weak scalars.

        A Python literal takes the array operand's dtype when its kind
        fits (``uint64_codes & 1`` stays uint64); a weak *float* still
        drags an integer array to float64, which is exactly the upcast
        the rules police.
        """
        if left.is_array and right.kind == "scalar" and right.weak:
            array, scalar = left, right
        elif right.is_array and left.kind == "scalar" and left.weak:
            array, scalar = right, left
        else:
            return promote(left.dtype, right.dtype)
        if array.dtype is None or scalar.dtype is None:
            return None
        ak, sk = dtype_kind(array.dtype), dtype_kind(scalar.dtype)
        if ak not in _KIND_RANK or sk not in _KIND_RANK:
            return promote(array.dtype, scalar.dtype)
        if _KIND_RANK[sk] <= _KIND_RANK[ak]:
            return array.dtype
        if sk == "float":
            return "float64" if ak != "complex" else array.dtype
        if sk == "complex":
            return "complex128"
        return "int64" if ak == "bool" else array.dtype

    def _binop(
        self,
        node: ast.AST,
        op: str,
        left: AbstractValue,
        right: AbstractValue,
    ) -> AbstractValue:
        if not (left.is_array or right.is_array):
            if left.kind == "scalar" and right.kind == "scalar":
                dtype = promote(left.dtype, right.dtype)
                if op == "truediv" and dtype_kind(dtype) in (
                    "bool", "int", "uint"
                ):
                    dtype = "float64"
                return _scalar(
                    dtype, weak=left.weak and right.weak
                ) if dtype else AbstractValue(kind="scalar")
            return UNKNOWN
        dtype = self._promote_operands(left, right)
        if op == "truediv" and dtype_kind(dtype) in ("bool", "int", "uint"):
            dtype = "float64"
        if op == "matmul":
            result = _array(dtype)
        else:
            ndim = None
            shape = None
            if left.ndim is not None and right.ndim is not None:
                ndim = max(left.ndim, right.ndim)
            if left.shape is not None and right.shape is not None:
                shape = broadcast_shapes(left.shape, right.shape)
                if shape is None:
                    self.facts.broadcast_violations.append(
                        BroadcastViolation(
                            *self._site(node),
                            left=left.shape,
                            right=right.shape,
                        )
                    )
                    shape = None
                else:
                    ndim = len(shape)
            elif left.is_array and right.kind == "scalar":
                ndim, shape = left.ndim, left.shape
            elif right.is_array and left.kind == "scalar":
                ndim, shape = right.ndim, right.shape
            # array meets unknown: the unknown side may out-rank the
            # known one, so the result's rank stays unknown
            result = _array(dtype, ndim, shape)
        self.facts.ops.append(
            OpSite(
                *self._site(node), op=op, left=left, right=right,
                result=result,
            )
        )
        return result

    def _compare(self, node: ast.Compare) -> AbstractValue:
        left = self._eval(node.left)
        rights = [self._eval(c) for c in node.comparators]
        operands = [(node.left, left)] + list(zip(node.comparators, rights))
        arrays = [v for _, v in operands if v.is_array]
        if arrays and not any(
            isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn))
            for op in node.ops
        ):
            for (lnode, lval), (rnode, rval) in zip(
                operands, operands[1:]
            ):
                if not (lval.is_array or rval.is_array):
                    continue
                float_const = any(
                    isinstance(n, ast.Constant)
                    and isinstance(n.value, float)
                    for n in (lnode, rnode)
                )
                self.facts.compares.append(
                    CompareSite(
                        *self._site(node), left=lval, right=rval,
                        float_const=float_const,
                    )
                )
        if arrays:
            ndim = arrays[0].ndim if len(arrays) == 1 else None
            return _array("bool", ndim)
        return _scalar("bool")

    # -- calls --------------------------------------------------------

    def _dtype_argument(self, node: ast.expr) -> str | None:
        """Normalise a ``dtype=`` argument to a dtype name (or None)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value
        else:
            resolved = self.ctx.resolve(node)
            if resolved is None:
                return None
            name = resolved.rsplit(".", 1)[-1]
            if resolved.startswith("numpy.") or resolved == name:
                pass
            else:
                return None
        name = _DTYPE_ALIASES.get(name, name)
        if dtype_kind(name) in _KIND_RANK or name in ("object", "str"):
            return name
        return None

    def _literal_array(self, node: ast.expr) -> AbstractValue:
        """The array ``np.array(<literal>)`` builds, when inferable."""
        if not isinstance(node, (ast.List, ast.Tuple)):
            return UNKNOWN
        depths: list[int] = []
        dtypes: list[str | None] = []
        lengths: set[int] = set()
        objecty = False

        def scan(n: ast.expr, depth: int) -> None:
            nonlocal objecty
            if isinstance(n, (ast.List, ast.Tuple)):
                if depth == 1:
                    lengths.add(len(n.elts))
                for elt in n.elts:
                    scan(elt, depth + 1)
                if not n.elts:
                    depths.append(depth)
                return
            depths.append(depth)
            if isinstance(n, ast.Constant):
                if n.value is None or isinstance(
                    n.value, (bytes,)
                ):
                    objecty = True
                elif isinstance(n.value, str):
                    dtypes.append("str")
                else:
                    dtypes.append(self._constant(n.value).dtype)
            elif isinstance(n, (ast.Dict, ast.Set, ast.Lambda)):
                objecty = True
                self._eval(n)
            else:
                value = self._eval(n)
                dtypes.append(
                    value.dtype if value.kind == "scalar" else None
                )

        scan(node, 0)
        if objecty or len(lengths) > 1:  # None leaves or ragged rows
            return _array("object", max(depths) if depths else 1)
        dtype: str | None = "int64" if dtypes else None
        for d in dtypes:
            if d == "str":
                dtype = "str"
                break
            dtype = promote(dtype, d)
        ndim = max(depths) if depths else 1
        shape = None
        if ndim == 1 and isinstance(node, (ast.List, ast.Tuple)):
            shape = (len(node.elts),)
        return _array(dtype, ndim, shape)

    def _is_fresh_conversion(self, node: ast.expr) -> str | None:
        """Does ``node`` directly allocate a converted array?"""
        if not isinstance(node, ast.Call):
            return None
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "astype", "copy"
        ):
            return node.func.attr
        resolved = self.ctx.resolve(node.func)
        if resolved and resolved.startswith("numpy."):
            short = resolved.rsplit(".", 1)[-1]
            if short in _CONVERSIONS:
                return short
        return None

    def _shape_argument(
        self, node: ast.expr
    ) -> tuple[int | None, tuple[int | None, ...] | None]:
        """(ndim, shape) from an allocator's shape argument."""
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return 1, (node.value,)
        if isinstance(node, (ast.Tuple, ast.List)):
            dims: list[int | None] = []
            for elt in node.elts:
                if isinstance(elt, ast.Constant) and isinstance(
                    elt.value, int
                ):
                    dims.append(elt.value)
                else:
                    self._eval(elt)
                    dims.append(None)
            return len(dims), tuple(dims)
        value = self._eval(node)
        if value.kind == "scalar":
            return 1, None
        return None, None

    def _axis_check(
        self, node: ast.Call, recv: AbstractValue
    ) -> int | None:
        """Evaluate an ``axis=`` kwarg, recording rank violations."""
        for kw in node.keywords:
            if kw.arg != "axis":
                continue
            if isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, int
            ):
                axis = kw.value.value
                if recv.is_array and recv.ndim is not None and not (
                    -recv.ndim <= axis < recv.ndim
                ):
                    self.facts.ndim_violations.append(
                        NdimViolation(
                            *self._site(node),
                            what=f"axis={axis}",
                            ndim=recv.ndim,
                        )
                    )
                return axis
            self._eval(kw.value)
            return None
        return None

    def _record_constructor(
        self,
        node: ast.Call,
        func: str,
        pinned: bool,
        value: AbstractValue,
    ) -> AbstractValue:
        self.facts.constructors.append(
            ConstructorSite(
                *self._site(node), func=func, pinned=pinned, value=value
            )
        )
        return value

    def _numpy_call(
        self, node: ast.Call, short: str
    ) -> AbstractValue | None:
        """Semantics for ``numpy.<short>(...)``; None when unmodelled."""
        dtype_kwarg: str | None = None
        pinned = False
        for kw in node.keywords:
            if kw.arg == "dtype":
                pinned = True
                dtype_kwarg = self._dtype_argument(kw.value)
            elif kw.arg != "axis":
                self._eval(kw.value)
        args = node.args

        if short in _CONVERSIONS:
            data = self._eval(args[0]) if args else UNKNOWN
            nested = args and self._is_fresh_conversion(args[0])
            if nested:
                self.facts.copies.append(
                    CopySite(
                        *self._site(node),
                        pattern=f"{short}-of-{nested}",
                    )
                )
            if pinned:
                value = _array(
                    dtype_kwarg,
                    data.ndim if data.is_array else None,
                    data.shape if data.is_array else None,
                    origin=short,
                )
            elif data.is_array:
                value = replace(data, origin=short)
            elif args and isinstance(args[0], (ast.List, ast.Tuple)):
                literal = self._literal_array(args[0])
                value = replace(literal, origin=short)
            elif data.kind == "scalar":
                value = _array(data.dtype, 0, origin=short)
            else:
                value = _array(origin=short)
            return self._record_constructor(node, short, pinned, value)

        if short in ("zeros", "ones", "empty", "full"):
            ndim, shape = (
                self._shape_argument(args[0]) if args else (None, None)
            )
            if dtype_kwarg is not None:
                dtype = dtype_kwarg
            elif pinned:
                dtype = None
            elif short == "full":
                fill = self._eval(args[1]) if len(args) > 1 else UNKNOWN
                dtype = fill.dtype if fill.kind == "scalar" else None
            else:
                dtype = "float64"
            return self._record_constructor(
                node, short, pinned, _array(dtype, ndim, shape, short)
            )

        if short == "arange":
            arg_values = [self._eval(a) for a in args]
            if dtype_kwarg is not None:
                dtype = dtype_kwarg
            elif pinned:
                dtype = None
            else:
                dtype = "int64"
                for value in arg_values:
                    if value.kind != "scalar" or value.dtype is None:
                        dtype = None
                        break
                    dtype = promote(dtype, value.dtype)
            shape = None
            if (
                len(args) == 1
                and isinstance(args[0], ast.Constant)
                and isinstance(args[0].value, int)
            ):
                shape = (args[0].value,)
            return self._record_constructor(
                node, short, pinned, _array(dtype, 1, shape, short)
            )

        if short in ("linspace", "fromiter", "frombuffer"):
            for a in args:
                self._eval(a)
            dtype = dtype_kwarg if pinned else (
                "float64" if short == "linspace" else None
            )
            return self._record_constructor(
                node, short, pinned, _array(dtype, 1, origin=short)
            )

        if short in ("eye", "identity"):
            for a in args:
                self._eval(a)
            dtype = dtype_kwarg if pinned else "float64"
            return self._record_constructor(
                node, short, pinned, _array(dtype, 2, origin=short)
            )

        if short in ("zeros_like", "ones_like", "empty_like", "full_like"):
            data = self._eval(args[0]) if args else UNKNOWN
            dtype = dtype_kwarg if pinned else (
                data.dtype if data.is_array else None
            )
            value = _array(
                dtype,
                data.ndim if data.is_array else None,
                data.shape if data.is_array else None,
                origin=short,
            )
            return self._record_constructor(node, short, pinned, value)

        if short in ("concatenate", "stack", "vstack", "hstack"):
            parts: list[AbstractValue] = []
            if args and isinstance(args[0], (ast.List, ast.Tuple)):
                parts = [self._eval(elt) for elt in args[0].elts]
            elif args:
                self._eval(args[0])
            dtype = None
            if parts and all(p.is_array for p in parts):
                dtype = parts[0].dtype
                for p in parts[1:]:
                    dtype = promote(dtype, p.dtype)
            ndim = parts[0].ndim if parts and all(
                p.ndim == parts[0].ndim for p in parts
            ) else None
            if short == "stack" and ndim is not None:
                ndim += 1
            return _array(dtype, ndim)

        if short in _REDUCTIONS:
            recv = self._eval(args[0]) if args else UNKNOWN
            return self._reduction(node, short, recv)

        if short in _PRESERVING:
            recv = self._eval(args[0]) if args else UNKNOWN
            for a in args[1:]:
                self._eval(a)
            self._axis_check(node, recv)
            if short == "unique":
                return _array(recv.dtype, 1)
            if not recv.is_array:
                return recv if recv.kind == "scalar" else UNKNOWN
            return _array(recv.dtype, recv.ndim, recv.shape)

        if short in ("argsort", "nonzero", "flatnonzero", "searchsorted"):
            for a in args:
                self._eval(a)
            if short == "argsort":
                recv = self._eval(args[0]) if args else UNKNOWN
                return _array(
                    "int64",
                    recv.ndim if recv.is_array else None,
                )
            if short == "flatnonzero":
                return _array("int64", 1)
            return AbstractValue(kind="tuple")

        if short in _BIN_UFUNCS:
            left = self._eval(args[0]) if args else UNKNOWN
            right = self._eval(args[1]) if len(args) > 1 else UNKNOWN
            return self._binop(node, _BIN_UFUNCS[short], left, right)

        if short in ("isclose", "allclose"):
            left = self._eval(args[0]) if args else UNKNOWN
            right = self._eval(args[1]) if len(args) > 1 else UNKNOWN
            if left.is_array or right.is_array:
                self.facts.compares.append(
                    CompareSite(
                        *self._site(node), left=left, right=right,
                        float_const=False, isclose=True,
                    )
                )
            if short == "allclose":
                return _scalar("bool")
            ndim = None
            for value in (left, right):
                if value.is_array and value.ndim is not None:
                    ndim = value.ndim if ndim is None else max(
                        ndim, value.ndim
                    )
            return _array("bool", ndim)

        if short == "where":
            cond = self._eval(args[0]) if args else UNKNOWN
            if len(args) >= 3:
                a, b = self._eval(args[1]), self._eval(args[2])
                return _array(
                    promote(a.dtype, b.dtype),
                    cond.ndim if cond.is_array else None,
                )
            return AbstractValue(kind="tuple")

        if short == "reshape":
            recv = self._eval(args[0]) if args else UNKNOWN
            for a in args[1:]:
                self._eval(a)
            return _array(recv.dtype if recv.is_array else None)

        return None

    def _reduction(
        self, node: ast.Call, name: str, recv: AbstractValue
    ) -> AbstractValue:
        axis = self._axis_check(node, recv)
        if name in _FLOAT_REDUCTIONS:
            dtype: str | None = "float64"
            if dtype_kind(recv.dtype) == "complex":
                dtype = recv.dtype
        elif name in _BOOL_REDUCTIONS:
            dtype = "bool"
        elif name in _INDEX_REDUCTIONS:
            dtype = "int64"
        else:
            dtype = recv.dtype
        has_axis = any(kw.arg == "axis" for kw in node.keywords)
        if not has_axis:
            return _scalar(dtype) if dtype else AbstractValue(kind="scalar")
        if recv.is_array and recv.ndim is not None and axis is not None:
            ndim = max(recv.ndim - 1, 0)
            return _array(dtype, ndim) if ndim else (
                _scalar(dtype) if dtype else AbstractValue(kind="scalar")
            )
        return _array(dtype)

    def _method_call(
        self, node: ast.Call, recv: AbstractValue, method: str
    ) -> AbstractValue:
        args = node.args
        if method == "astype":
            dtype = self._dtype_argument(args[0]) if args else None
            chained = self._is_fresh_conversion(node.func.value)  # type: ignore[attr-defined]
            if chained in _CONVERSIONS:
                self.facts.copies.append(
                    CopySite(
                        *self._site(node),
                        pattern=f"astype-of-{chained}",
                    )
                )
            value = _array(dtype, recv.ndim, recv.shape, origin="astype")
            return self._record_constructor(node, "astype", True, value)
        if method == "copy":
            chained = self._is_fresh_conversion(node.func.value)  # type: ignore[attr-defined]
            if chained in _CONVERSIONS:
                # np.asarray(v).copy(): the intermediate is anonymous,
                # so the two passes always collapse into np.array(v)
                self.facts.copies.append(
                    CopySite(
                        *self._site(node), pattern=f"copy-of-{chained}"
                    )
                )
            elif (
                recv.origin in ("asarray", "array")
                and node is self._returned_copy
            ):
                # `return x.copy()` where x is a fresh conversion: the
                # function is done with x, so the copy is provably
                # redundant.  Elsewhere x may be mutated after the
                # snapshot, so only the return position is flagged.
                self.facts.copies.append(
                    CopySite(
                        *self._site(node),
                        pattern=f"copy-of-{recv.origin}",
                    )
                )
            return replace(recv, origin="copy")
        if method == "tolist":
            return AbstractValue(kind="list", origin="tolist")
        if method in _REDUCTIONS:
            return self._reduction(node, method, recv)
        if method == "astuple":
            return AbstractValue(kind="tuple")
        if method == "reshape":
            for a in args:
                self._eval(a)
            ndim: int | None = None
            if len(args) == 1 and isinstance(args[0], (ast.Tuple, ast.List)):
                ndim = len(args[0].elts)
            elif args:
                ndim = len(args)
            return _array(recv.dtype, ndim)
        if method in ("ravel", "flatten"):
            return _array(recv.dtype, 1)
        if method in ("sort", "fill", "clip"):
            for a in args:
                self._eval(a)
            return UNKNOWN if method == "sort" else recv
        if method == "view":
            for a in args:
                self._eval(a)
            return _array(None, recv.ndim, recv.shape)
        if method == "item":
            # .item() unboxes to a Python scalar, which promotes weakly
            return (
                _scalar(recv.dtype, weak=True)
                if recv.dtype
                else AbstractValue(kind="scalar", weak=True)
            )
        for a in args:
            self._eval(a)
        return UNKNOWN

    def _call(self, node: ast.Call) -> AbstractValue:
        func = node.func
        # builtins worth modelling
        if isinstance(func, ast.Name) and func.id in (
            "list", "int", "float", "bool", "len", "abs", "sorted",
            "tuple", "sum", "min", "max",
        ):
            inner = [self._eval(a) for a in node.args]
            for kw in node.keywords:
                self._eval(kw.value)
            if func.id == "list":
                if inner and inner[0].origin == "tolist":
                    self.facts.copies.append(
                        CopySite(*self._site(node), pattern="list-of-tolist")
                    )
                return AbstractValue(kind="list")
            if func.id in ("int", "len", "sum"):
                return _scalar("int64", weak=True)
            if func.id == "float":
                return _scalar("float64", weak=True)
            if func.id == "bool":
                return _scalar("bool", weak=True)
            if func.id == "abs":
                return inner[0] if inner else UNKNOWN
            if func.id in ("sorted", "tuple"):
                return AbstractValue(
                    kind="list" if func.id == "sorted" else "tuple"
                )
            return UNKNOWN

        if isinstance(func, ast.Attribute):
            recv = self._eval(func.value)
            if recv.is_array:
                return self._method_call(node, recv, func.attr)
            if recv.kind == "instance" and recv.cls is not None:
                # typed receiver: dispatch through the class hierarchy
                # and read the method's return summary
                for a in node.args:
                    self._eval(a)
                for kw in node.keywords:
                    self._eval(kw.value)
                target = self.program.method_in_hierarchy(
                    recv.cls, func.attr
                )
                if target is not None:
                    return self.summaries.get(target, UNKNOWN)
                return UNKNOWN

        resolved = self.ctx.resolve(func)
        if resolved and resolved.startswith("numpy."):
            if resolved.startswith("numpy.random."):
                for a in node.args:
                    self._eval(a)
                for kw in node.keywords:
                    self._eval(kw.value)
                return UNKNOWN
            short = resolved.rsplit(".", 1)[-1]
            value = self._numpy_call(node, short)
            if value is not None:
                return value
            for a in node.args:
                self._eval(a)
            for kw in node.keywords:
                self._eval(kw.value)
            return UNKNOWN

        for a in node.args:
            self._eval(a)
        for kw in node.keywords:
            self._eval(kw.value)

        # interprocedural: a call into another indexed function reads
        # its return summary; instantiating an indexed class yields a
        # typed instance whose method calls dispatch via the hierarchy.
        target = self.program.resolve(resolved, self.ctx.module)
        if target is not None and target[0] == "func":
            return self.summaries.get(target[1], UNKNOWN)
        if target is not None and target[0] == "class":
            return AbstractValue(kind="instance", cls=target[1])
        return UNKNOWN

    def _subscript(self, node: ast.Subscript) -> AbstractValue:
        value = self._eval(node.value)
        index = node.slice
        if not value.is_array:
            self._eval(index)
            return UNKNOWN
        scalar_indices = 0
        widening = False
        if isinstance(index, ast.Tuple):
            for elt in index.elts:
                if isinstance(elt, ast.Slice):
                    for part in (elt.lower, elt.upper, elt.step):
                        if part is not None:
                            self._eval(part)
                elif isinstance(elt, ast.Constant) and (
                    elt.value is None or elt.value is Ellipsis
                ):
                    widening = True  # newaxis/... re-rank the result
                else:
                    inner = self._eval(elt)
                    if inner.is_array:
                        widening = True  # advanced indexing
                    else:
                        scalar_indices += 1
        elif isinstance(index, ast.Slice):
            for part in (index.lower, index.upper, index.step):
                if part is not None:
                    self._eval(part)
        else:
            inner = self._eval(index)
            if inner.is_array:
                # mask / fancy index: rank depends on the index array
                if inner.dtype == "bool":
                    return _array(value.dtype, 1)
                return _array(value.dtype, inner.ndim)
            scalar_indices = 1
        if widening:
            return _array(value.dtype)
        if value.ndim is not None and scalar_indices > value.ndim:
            self.facts.ndim_violations.append(
                NdimViolation(
                    *self._site(node),
                    what=(
                        f"{scalar_indices} scalar "
                        f"ind{'ices' if scalar_indices != 1 else 'ex'}"
                    ),
                    ndim=value.ndim,
                )
            )
            return UNKNOWN
        if value.ndim is None:
            return _array(value.dtype)
        ndim = value.ndim - scalar_indices
        if ndim <= 0:
            return (
                _scalar(value.dtype)
                if value.dtype
                else AbstractValue(kind="scalar")
            )
        return _array(value.dtype, ndim)

    def _attribute(self, node: ast.Attribute) -> AbstractValue:
        value = self._eval(node.value)
        if value.is_array:
            if node.attr == "T":
                shape = (
                    tuple(reversed(value.shape))
                    if value.shape is not None
                    else None
                )
                return _array(value.dtype, value.ndim, shape)
            if node.attr in ("ndim", "size", "itemsize", "nbytes"):
                return _scalar("int64")
            if node.attr == "shape":
                return AbstractValue(kind="tuple")
            if node.attr in ("dtype", "flags", "base", "flat", "strides"):
                return AbstractValue(kind="other")
            if node.attr in ("real", "imag"):
                return _array(None, value.ndim, value.shape)
        return UNKNOWN


# ---------------------------------------------------------------------------
# the model


@dataclass
class ShapeModel:
    """Per-function shape facts plus the interprocedural summaries."""

    facts: dict[str, FunctionFacts] = field(default_factory=dict)
    summaries: dict[str, AbstractValue] = field(default_factory=dict)

    @classmethod
    def build(cls, program: Program) -> "ShapeModel":
        """Interpret every function, iterating summaries to a fixpoint.

        Function order never matters: each pass interprets all
        functions against the *previous* pass's summaries, and the
        joins are commutative, so the fixpoint (and every recorded
        fact) depends only on the program, not discovery order.
        """
        summaries: dict[str, AbstractValue] = {}
        facts: dict[str, FunctionFacts] = {}
        for _ in range(MAX_PASSES):
            facts = {}
            new_summaries: dict[str, AbstractValue] = {}
            for qualname in sorted(program.functions):
                finfo = program.functions[qualname]
                ctx = program.contexts.get(finfo.path)
                if ctx is None:
                    continue
                interp = _Interpreter(program, ctx, finfo, summaries)
                facts[qualname] = interp.run()
                new_summaries[qualname] = facts[qualname].returns
            if new_summaries == summaries:
                break
            summaries = new_summaries
        return cls(facts=facts, summaries=summaries)

    def dtype_counts(self) -> dict[str, int]:
        """Histogram of inferred constructor dtypes (for reports)."""
        counts: dict[str, int] = {}
        for qualname in sorted(self.facts):
            for site in self.facts[qualname].constructors:
                key = site.value.dtype or "unknown"
                counts[key] = counts.get(key, 0) + 1
        return counts
