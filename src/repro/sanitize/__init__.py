"""repro.sanitize: static analysis of the repro source tree itself.

Where :mod:`repro.lint` analyses comparator networks, this package
analyses the Python code that *produces* them, guarding the invariants
the paper reproduction depends on but no unit test states directly:

* **determinism** -- every random draw in the certificate-producing
  zone flows from an explicit seed; no wall clocks or OS entropy leak
  into content-addressed results; set iteration order never reaches an
  ordered output;
* **fork safety** -- nothing mutates module globals or captures
  pre-fork handles/tracers that would desynchronise the farm's worker
  pool;
* **observability** -- library errors cross the CLI boundary as
  :class:`~repro.errors.ReproError`, entry points keep their span
  instrumentation, stdout belongs to the CLI;
* **schema stability** -- serialized dataclass fields cannot drift
  without a version bump, enforced against a pinned fingerprint
  registry.

Built entirely on the stdlib :mod:`ast` -- no new dependencies -- and
mirroring the linter's architecture: a rule registry with stable
``category/name`` ids, shared :class:`~repro.diagnostics.Diagnostic`
records, JSON and human reports, ``--select`` filtering, and a
checked-in (empty, and ratcheted-to-stay-empty) baseline.  CLI:
``repro sanitize [paths] [--json] [--select] [--baseline] [--fix]``.
"""

from .baseline import BASELINE_VERSION, Baseline
from .diagnostics import Diagnostic, FixIt, Severity, SourceLocation
from .engine import (
    FileContext,
    SanitizeConfig,
    anchored_path,
    discover_files,
    sanitize_file,
    sanitize_paths,
    sanitize_source,
)
from .report import SanitizeReport
from .rules import RULES, SanitizeRule, sanitize_rule
from .schema import (
    REGISTRY_PATH,
    REGISTRY_VERSION,
    ModuleSchema,
    collect_schemas,
    load_registry,
    module_schema,
    updated_registry,
    write_registry,
)

__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "Diagnostic",
    "FixIt",
    "Severity",
    "SourceLocation",
    "FileContext",
    "SanitizeConfig",
    "anchored_path",
    "discover_files",
    "sanitize_file",
    "sanitize_paths",
    "sanitize_source",
    "SanitizeReport",
    "RULES",
    "SanitizeRule",
    "sanitize_rule",
    "REGISTRY_PATH",
    "REGISTRY_VERSION",
    "ModuleSchema",
    "collect_schemas",
    "load_registry",
    "module_schema",
    "updated_registry",
    "write_registry",
]
