"""Checked-in baselines: grandfathering existing findings, temporarily.

A baseline is a JSON document listing findings that are acknowledged
but not yet fixed; matching findings are suppressed from the report
(and the exit code) so the CI gate can be turned on *before* the tree
is fully clean, then ratcheted down to empty.  The shipped baseline
(``sanitize-baseline.json`` at the repo root) is empty and must stay
empty: new findings fail CI immediately.

Entries are fingerprinted as ``(rule id, repro-anchored path, stripped
source line)`` rather than line numbers, so unrelated edits above a
grandfathered finding do not churn the baseline.  A consequence worth
knowing: two *identical* violations on identical lines of one file
share a fingerprint and are suppressed together -- acceptable for a
ratchet-to-zero workflow, where entries only ever disappear.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import SanitizeError
from .diagnostics import Diagnostic

__all__ = ["BASELINE_VERSION", "Baseline"]

#: Version of the baseline document format; bump on breaking change.
BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A set of grandfathered finding fingerprints."""

    entries: set[tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file (``SanitizeError`` on malformed input)."""
        p = Path(path)
        try:
            doc = json.loads(p.read_text())
        except OSError as exc:
            raise SanitizeError(f"cannot read baseline {p}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise SanitizeError(
                f"baseline {p} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
            raise SanitizeError(
                f"baseline {p} must be an object with version = "
                f"{BASELINE_VERSION}"
            )
        findings = doc.get("findings")
        if not isinstance(findings, list):
            raise SanitizeError(f"baseline {p}: 'findings' must be a list")
        entries: set[tuple[str, str, str]] = set()
        for i, entry in enumerate(findings):
            if not isinstance(entry, dict) or not all(
                isinstance(entry.get(k), str) for k in ("rule", "path")
            ):
                raise SanitizeError(
                    f"baseline {p}: finding {i} must be an object with "
                    "string 'rule' and 'path'"
                )
            entries.add(
                (entry["rule"], entry["path"], entry.get("content", ""))
            )
        return cls(entries=entries)

    @staticmethod
    def fingerprint(diag: Diagnostic, line_text: str) -> tuple[str, str, str]:
        """The line-number-independent identity of one finding."""
        from .engine import anchored_path

        path = getattr(diag.location, "path", "") or ""
        return (diag.rule, anchored_path(path) if path else "", line_text)

    def matches(self, diag: Diagnostic, line_text: str) -> bool:
        """True iff this finding is grandfathered."""
        return self.fingerprint(diag, line_text) in self.entries

    @staticmethod
    def document(
        findings: list[tuple[Diagnostic, str]],
    ) -> dict[str, Any]:
        """Build a baseline document from ``(diagnostic, line text)`` pairs."""
        seen: set[tuple[str, str, str]] = set()
        entries: list[dict[str, str]] = []
        for diag, line_text in findings:
            fp = Baseline.fingerprint(diag, line_text)
            if fp in seen:
                continue
            seen.add(fp)
            entries.append(
                {"rule": fp[0], "path": fp[1], "content": fp[2]}
            )
        entries.sort(key=lambda e: (e["path"], e["rule"], e["content"]))
        return {"version": BASELINE_VERSION, "findings": entries}

    def write(self, path: str | Path, doc: dict[str, Any]) -> None:
        """Write a baseline document with a trailing newline."""
        Path(path).write_text(json.dumps(doc, indent=2) + "\n")
