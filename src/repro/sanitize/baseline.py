"""Checked-in baselines: grandfathering existing findings, temporarily.

The implementation lives in :mod:`repro.diagnostics` since PR 9: the
ratchet semantics (line-number-independent fingerprints, load/match/
write, the shipped-empty contract) are shared verbatim by ``sanitize``,
``flow``, ``perf`` and ``race``, so the class moved next to the
:class:`~repro.diagnostics.Diagnostic` record it fingerprints.  This
module re-exports it under the historical import path.
"""

from __future__ import annotations

from ..diagnostics import BASELINE_VERSION, Baseline

__all__ = ["BASELINE_VERSION", "Baseline"]
