"""The sanitize rule catalog: registry, scopes, rule implementations.

Each rule is a pure function from a
:class:`~repro.sanitize.engine.FileContext` to an iterable of
:class:`~repro.diagnostics.Diagnostic` records, registered under a
stable ``category/name`` id via :func:`sanitize_rule` -- the same shape
as the network linter's catalog (:mod:`repro.lint.rules`).  Families:

``determinism/*``
    Sources of run-to-run nondeterminism inside the *deterministic
    zone* -- ``repro/core``, ``repro/analysis`` and the farm job
    handlers (``repro/farm/jobs.py``) -- where every result feeds a
    content-addressed artifact or a reproducible certificate: unseeded
    generators, the stdlib global ``random``, wall clocks, entropy
    sources, and set-iteration-order hazards.
``forksafety/*``
    Hazards for the pre-fork worker pool (``repro.farm.runner``):
    module-global state mutated from function bodies, ``global``
    statements, locks/handles created at import time (and therefore
    duplicated into every forked child), and import-time capture of the
    process-global tracer.
``obs/*``
    Observability and CLI-boundary hygiene: exceptions that are not
    :class:`~repro.errors.ReproError` subclasses (the CLI maps
    ``ReproError`` to diagnostics and exit codes; anything else is a
    stack trace), stray ``print`` to stdout from library code, and
    adversary entry-point modules that lost their span instrumentation.
``schema/*``
    Serialized-format drift, via the pinned fingerprint registry of
    :mod:`repro.sanitize.schema`.

A ``parse/syntax-error`` diagnostic (emitted by the engine, not listed
here) reports unparseable files.

Scopes are path-prefix based on the ``repro/...``-anchored form, so a
fixture snippet analysed under a virtual path like
``"repro/core/example.py"`` exercises exactly the rules a real core
module would.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from .diagnostics import Diagnostic, Severity, SourceLocation
from .schema import module_schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .engine import FileContext

__all__ = [
    "SanitizeRule",
    "RULES",
    "sanitize_rule",
    "DETERMINISM_SCOPE",
    "FORKSAFETY_SCOPE",
    "CLI_MODULES",
    "ENTRYPOINT_MODULES",
    "SCHEMA_MODULES",
]


# ---------------------------------------------------------------------------
# scopes

#: Where results must be bit-for-bit reproducible: the certificate
#: machinery, its analyses, and the farm job handlers whose results are
#: content-addressed by the artifact store.
DETERMINISM_SCOPE = (
    "repro/core/",
    "repro/analysis/",
    "repro/farm/jobs.py",
)

#: Code imported on both sides of the farm's pre-fork worker pool.
FORKSAFETY_SCOPE = (
    "repro/core/",
    "repro/analysis/",
    "repro/farm/",
)

#: Process boundary modules where printing/argv handling is the job.
CLI_MODULES = ("repro/cli.py", "repro/__main__.py")

#: Modules whose public entry points carry span instrumentation (PR 3);
#: losing the tracer import here silently blinds ``repro stats``.
ENTRYPOINT_MODULES = (
    "repro/core/adversary.py",
    "repro/core/attack.py",
    "repro/core/fooling.py",
    "repro/core/iterate.py",
    "repro/experiments/harness.py",
)

#: Modules owning persisted wire formats, pinned in the schema registry.
SCHEMA_MODULES = (
    "repro/core/certificates.py",
    "repro/farm/campaign.py",
    "repro/farm/heartbeat.py",
    "repro/farm/jobs.py",
    "repro/farm/store.py",
    "repro/flow/report.py",
    "repro/networks/serialize.py",
    "repro/obs/events.py",
    "repro/obs/flight.py",
    "repro/obs/registry.py",
    "repro/perf/report.py",
    "repro/perf/worklist.py",
    "repro/race/report.py",
    "repro/serve/loadgen.py",
    "repro/serve/protocol.py",
    "repro/serve/server.py",
    "repro/shape/report.py",
)


# ---------------------------------------------------------------------------
# registry


@dataclass(frozen=True)
class SanitizeRule:
    """One registered rule: id, default severity, summary, checker."""

    id: str
    severity: Severity
    summary: str
    check: Callable[["FileContext"], Iterable[Diagnostic]]


#: The global registry, keyed by rule id, in registration order.
RULES: dict[str, SanitizeRule] = {}


def sanitize_rule(
    rule_id: str, severity: Severity, summary: str
) -> Callable[[Callable[["FileContext"], Iterable[Diagnostic]]], Callable]:
    """Decorator registering a rule function under ``rule_id``."""

    def register(
        fn: Callable[["FileContext"], Iterable[Diagnostic]],
    ) -> Callable:
        RULES[rule_id] = SanitizeRule(
            id=rule_id, severity=severity, summary=summary, check=fn
        )
        return fn

    return register


def _loc(ctx: "FileContext", node: ast.AST) -> SourceLocation:
    return SourceLocation(
        path=ctx.path,
        line=getattr(node, "lineno", None),
        col=getattr(node, "col_offset", None),
    )


def _calls(ctx: "FileContext") -> Iterator[ast.Call]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            yield node


def _function_body_ids(ctx: "FileContext") -> set[int]:
    """Ids of every AST node nested inside a function or lambda body."""
    inside: set[int] = set()
    for func in ctx.function_nodes:
        for node in ast.walk(func):
            if node is not func:
                inside.add(id(node))
    return inside


# ---------------------------------------------------------------------------
# determinism rules

#: Draws against numpy's *global* generator: legacy module-level state
#: that any import anywhere can perturb.
_NP_GLOBAL_DRAWS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "standard_normal",
        "uniform",
        "normal",
        "seed",
        "get_state",
        "set_state",
    }
)


@sanitize_rule(
    "determinism/unseeded-rng",
    Severity.ERROR,
    "an unseeded numpy Generator (or the legacy global state) in the "
    "deterministic zone",
)
def check_unseeded_rng(ctx: "FileContext") -> Iterator[Diagnostic]:
    """``default_rng()`` without a seed, and ``np.random.<draw>`` at all.

    Every random draw in the deterministic zone must flow from an
    explicit seed (jobs derive theirs from the content hash, see
    ``Job.derived_seed``); an OS-entropy generator makes certificates,
    stored artifacts and resumed campaigns unreproducible.
    """
    if not ctx.in_scope(DETERMINISM_SCOPE):
        return
    for node in _calls(ctx):
        full = ctx.resolve(node.func)
        if full in ("numpy.random.default_rng", "numpy.random.RandomState"):
            if not node.args and not node.keywords:
                yield Diagnostic(
                    rule="determinism/unseeded-rng",
                    severity=Severity.ERROR,
                    message=(
                        f"{full.rsplit('.', 1)[1]}() without a seed draws "
                        "from OS entropy; thread an explicit seed through "
                        "(derive per-job seeds from the content hash as "
                        "repro.farm.jobs.Job.rng does)"
                    ),
                    location=_loc(ctx, node),
                )
            continue
        imported = ctx.resolve_imported(node.func)
        if (
            imported is not None
            and imported.startswith("numpy.random.")
            and imported.rsplit(".", 1)[1] in _NP_GLOBAL_DRAWS
        ):
            yield Diagnostic(
                rule="determinism/unseeded-rng",
                severity=Severity.ERROR,
                message=(
                    f"{imported} uses numpy's process-global generator; "
                    "pass an explicit np.random.Generator instead"
                ),
                location=_loc(ctx, node),
            )


@sanitize_rule(
    "determinism/bare-random",
    Severity.ERROR,
    "the stdlib global `random` module in the deterministic zone",
)
def check_bare_random(ctx: "FileContext") -> Iterator[Diagnostic]:
    """Any use of stdlib ``random.*``: global, seedable-from-anywhere state."""
    if not ctx.in_scope(DETERMINISM_SCOPE):
        return
    for node in _calls(ctx):
        full = ctx.resolve_imported(node.func)
        if full is not None and (
            full == "random" or full.startswith("random.")
        ):
            yield Diagnostic(
                rule="determinism/bare-random",
                severity=Severity.ERROR,
                message=(
                    f"{full} draws from the stdlib's process-global "
                    "generator; use a seeded np.random.Generator threaded "
                    "through the call chain"
                ),
                location=_loc(ctx, node),
            )


#: Wall clocks and calendar reads: values that differ on every run.
_WALL_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@sanitize_rule(
    "determinism/wall-clock",
    Severity.ERROR,
    "a wall-clock read in the deterministic zone",
)
def check_wall_clock(ctx: "FileContext") -> Iterator[Diagnostic]:
    """``time.time()`` and friends inside result-producing code.

    Timestamps belong to the observability layer (``repro.obs`` stamps
    spans; the farm runner stamps outcomes) -- never inside a job body
    or the certificate machinery, where they leak into hashed results.
    """
    if not ctx.in_scope(DETERMINISM_SCOPE):
        return
    for node in _calls(ctx):
        full = ctx.resolve_imported(node.func)
        if full in _WALL_CLOCKS:
            yield Diagnostic(
                rule="determinism/wall-clock",
                severity=Severity.ERROR,
                message=(
                    f"{full}() differs on every run; stamp wall-clock "
                    "times in the obs/runner layer, not in deterministic "
                    "result-producing code"
                ),
                location=_loc(ctx, node),
            )


@sanitize_rule(
    "determinism/entropy-source",
    Severity.ERROR,
    "an OS entropy source in the deterministic zone",
)
def check_entropy_source(ctx: "FileContext") -> Iterator[Diagnostic]:
    """``os.urandom``, ``uuid.uuid4``, ``secrets.*``: unseedable by design."""
    if not ctx.in_scope(DETERMINISM_SCOPE):
        return
    for node in _calls(ctx):
        full = ctx.resolve_imported(node.func)
        if full is None:
            continue
        if full in ("os.urandom", "uuid.uuid1", "uuid.uuid4") or (
            full.startswith("secrets.")
        ):
            yield Diagnostic(
                rule="determinism/entropy-source",
                severity=Severity.ERROR,
                message=(
                    f"{full} is unseedable OS entropy; results built from "
                    "it can never be reproduced or content-addressed"
                ),
                location=_loc(ctx, node),
            )


#: Wrapping calls that make set iteration order-insensitive or ordered.
_ORDER_SAFE_WRAPPERS = frozenset(
    {"sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset"}
)


def _is_set_expr(ctx: "FileContext", node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve(node.func) in ("set", "frozenset")
    return False


@sanitize_rule(
    "determinism/set-iteration",
    Severity.WARNING,
    "order-sensitive iteration over a set in the deterministic zone",
)
def check_set_iteration(ctx: "FileContext") -> Iterator[Diagnostic]:
    """Sets iterated where the element *order* can reach a result.

    Set iteration order depends on insertion history and (for strings)
    the per-process hash seed; a special-set or wire-set loop that
    feeds an ordered result must go through ``sorted(...)``.  Only
    syntactic set expressions are flagged (literals, comprehensions,
    ``set(...)`` calls) -- soundly incomplete rather than noisily
    unsound -- and order-insensitive reducers (``sum``, ``min``, ...)
    are exempt.
    """
    if not ctx.in_scope(DETERMINISM_SCOPE):
        return

    def diag(node: ast.AST, how: str) -> Diagnostic:
        return Diagnostic(
            rule="determinism/set-iteration",
            severity=Severity.WARNING,
            message=(
                f"{how} a set {'' if how == 'iterating' else ''}exposes "
                "its undefined iteration order; wrap the set in "
                "sorted(...) to fix the order"
            ),
            location=_loc(ctx, node),
        )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For) and _is_set_expr(ctx, node.iter):
            yield diag(node.iter, "iterating")
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in node.generators:
                if _is_set_expr(ctx, gen.iter) and not isinstance(
                    node, ast.SetComp
                ):
                    yield diag(gen.iter, "comprehending over")
        elif isinstance(node, ast.Call):
            name = ctx.resolve(node.func)
            if (
                name in ("list", "tuple")
                and len(node.args) == 1
                and _is_set_expr(ctx, node.args[0])
            ):
                yield diag(node.args[0], "materialising")


# ---------------------------------------------------------------------------
# fork-safety rules


@sanitize_rule(
    "forksafety/global-statement",
    Severity.ERROR,
    "a `global` statement in fork-shared code",
)
def check_global_statement(ctx: "FileContext") -> Iterator[Diagnostic]:
    """Rebinding module globals from functions races the worker pool.

    A forked worker inherits a snapshot of every module global; code
    that rebinds one from a function body behaves differently depending
    on whether it ran before or after the fork.  The one sanctioned
    process-global is the tracer singleton in ``repro.obs.trace``,
    which ships a documented reset hook (``set_tracer(None)`` +
    ``reset_context()``) that ``repro.farm.runner`` invokes in every
    worker -- and that module is deliberately outside this scope.
    """
    if not ctx.in_scope(FORKSAFETY_SCOPE):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Global):
            yield Diagnostic(
                rule="forksafety/global-statement",
                severity=Severity.ERROR,
                message=(
                    f"`global {', '.join(node.names)}` rebinds module "
                    "state from a function; pass state explicitly or add "
                    "a documented per-fork reset hook (cf. "
                    "repro.obs.trace.reset_context)"
                ),
                location=_loc(ctx, node),
            )


#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "extend",
        "insert",
        "setdefault",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "write",
    }
)


@sanitize_rule(
    "forksafety/module-state-mutation",
    Severity.ERROR,
    "function-body mutation of a module-level object in fork-shared code",
)
def check_module_state_mutation(ctx: "FileContext") -> Iterator[Diagnostic]:
    """In-place mutation of module-level containers from function bodies.

    Import-time registration (``RULES[...] = ...`` at module scope) is
    fine -- both sides of the fork replay it identically.  Mutating the
    same container from a function that may run in a worker is not: the
    parent never sees the change, and a resumed campaign sees whichever
    side happened to compute it.
    """
    if not ctx.in_scope(FORKSAFETY_SCOPE):
        return
    names = ctx.module_level_names
    if not names:
        return
    seen: set[int] = set()
    for func in ctx.function_nodes:
        for node in ast.walk(func):
            if id(node) in seen or node is func:
                continue
            seen.add(id(node))
            hit: ast.AST | None = None
            what = ""
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                base = node.func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in names
                    and node.func.attr in _MUTATORS
                ):
                    hit, what = node, f"{base.id}.{node.func.attr}(...)"
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, (ast.Subscript, ast.Attribute))
                        and isinstance(target.value, ast.Name)
                        and target.value.id in names
                    ):
                        hit, what = node, f"assignment into {target.value.id}"
                        break
            if hit is not None:
                yield Diagnostic(
                    rule="forksafety/module-state-mutation",
                    severity=Severity.ERROR,
                    message=(
                        f"{what} mutates module-level state from a "
                        "function body; forked workers and the parent "
                        "each see their own copy, so the mutation races "
                        "the pool -- pass the container explicitly"
                    ),
                    location=_loc(ctx, hit),
                )


#: Import-time factories whose products must not cross a fork.
_HANDLE_FACTORIES = frozenset(
    {
        "open",
        "threading.Lock",
        "threading.RLock",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Condition",
        "threading.Event",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "multiprocessing.Queue",
        "multiprocessing.Pool",
        "socket.socket",
        "tempfile.TemporaryFile",
        "tempfile.NamedTemporaryFile",
    }
)


@sanitize_rule(
    "forksafety/module-level-handle",
    Severity.ERROR,
    "a lock/file/socket created at import time in fork-shared code",
)
def check_module_level_handle(ctx: "FileContext") -> Iterator[Diagnostic]:
    """Handles created at import time are duplicated into every fork.

    A lock held during the fork deadlocks the child; a shared file
    descriptor interleaves writes.  Create handles inside the object or
    function that uses them (``Tracer`` builds its lock per instance).
    """
    if not ctx.in_scope(FORKSAFETY_SCOPE):
        return
    inside = _function_body_ids(ctx)
    for node in ast.walk(ctx.tree):
        if id(node) in inside:
            continue
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            full = ctx.resolve(value.func)
            if full in _HANDLE_FACTORIES:
                yield Diagnostic(
                    rule="forksafety/module-level-handle",
                    severity=Severity.ERROR,
                    message=(
                        f"{full}(...) at module/class scope creates a "
                        "handle before the worker pool forks; every child "
                        "inherits the same lock/descriptor -- create it "
                        "lazily inside the consumer"
                    ),
                    location=_loc(ctx, value),
                )


@sanitize_rule(
    "forksafety/tracer-capture",
    Severity.ERROR,
    "the process-global tracer captured at import time",
)
def check_tracer_capture(ctx: "FileContext") -> Iterator[Diagnostic]:
    """``TRACER = get_tracer()`` at module scope defeats the reset hook.

    Workers reset the singleton at startup (``set_tracer(None)``); a
    module-level capture keeps emitting into the parent's pre-fork
    tracer, corrupting the merged span tree.  Call ``get_tracer()`` at
    use time, as ``repro.core.attack`` does.
    """
    if not ctx.in_scope(FORKSAFETY_SCOPE):
        return
    inside = _function_body_ids(ctx)
    for node in ast.walk(ctx.tree):
        if id(node) in inside or not isinstance(node, ast.Call):
            continue
        full = ctx.resolve(node.func)
        if full is not None and (
            full == "get_tracer" or full.endswith(".get_tracer")
        ):
            yield Diagnostic(
                rule="forksafety/tracer-capture",
                severity=Severity.ERROR,
                message=(
                    "get_tracer() at import time captures the pre-fork "
                    "tracer singleton; call it at use time so worker "
                    "resets (set_tracer(None)) take effect"
                ),
                location=_loc(ctx, node),
            )


# ---------------------------------------------------------------------------
# observability / CLI-boundary rules

#: Builtin exception types that must not cross the CLI boundary raw.
_FOREIGN_EXCEPTIONS = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
    }
)


@sanitize_rule(
    "obs/foreign-exception",
    Severity.ERROR,
    "a raw builtin exception raised by library code",
)
def check_foreign_exception(ctx: "FileContext") -> Iterator[Diagnostic]:
    """Library raises must be :class:`~repro.errors.ReproError` subclasses.

    The CLI maps ``ReproError`` to located diagnostics and exit code 2;
    a raw ``ValueError`` becomes a stack trace.  Dual-inheritance
    subclasses (``DomainError(ReproError, ValueError)``) keep
    historical ``except ValueError`` callers working.
    """
    if ctx.relpath == "repro/errors.py" or ctx.in_scope(CLI_MODULES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = ctx.resolve(target)
        if name in _FOREIGN_EXCEPTIONS:
            yield Diagnostic(
                rule="obs/foreign-exception",
                severity=Severity.ERROR,
                message=(
                    f"raise {name} crosses the CLI boundary as a stack "
                    "trace; raise a ReproError subclass (dual-inherit "
                    f"from {name} to keep existing except clauses alive)"
                ),
                location=_loc(ctx, node),
            )


@sanitize_rule(
    "obs/print-stdout",
    Severity.WARNING,
    "library code printing to stdout",
)
def check_print_stdout(ctx: "FileContext") -> Iterator[Diagnostic]:
    """``print()`` without ``file=`` belongs to the CLI layer only.

    Library output goes through ``logging`` (configured by ``-v``/
    ``-q``/``REPRO_LOG``) or a report object the CLI renders; an
    explicit ``file=`` (e.g. the stderr line sink) is deliberate and
    allowed.
    """
    if ctx.in_scope(CLI_MODULES):
        return
    for node in _calls(ctx):
        if ctx.resolve(node.func) != "print":
            continue
        if any(kw.arg == "file" for kw in node.keywords):
            continue
        yield Diagnostic(
            rule="obs/print-stdout",
            severity=Severity.WARNING,
            message=(
                "print() to stdout from library code bypasses the "
                "logging configuration; use logging or return a "
                "renderable report"
            ),
            location=_loc(ctx, node),
        )


@sanitize_rule(
    "obs/uninstrumented-entrypoint",
    Severity.ERROR,
    "an adversary entry-point module with no tracer instrumentation",
)
def check_uninstrumented_entrypoint(ctx: "FileContext") -> Iterator[Diagnostic]:
    """Entry-point modules must keep their ``repro.obs`` instrumentation.

    PR 3 threaded spans through the attack/adversary/iterate/fooling
    pipeline and the experiment harness; a refactor that drops the
    tracer import silently blinds ``repro stats`` and the farm's
    per-job span merging.  Module granularity keeps the rule honest:
    it cannot prove every function is spanned, but it can prove the
    module stopped talking to the tracer altogether.
    """
    if not ctx.in_scope(ENTRYPOINT_MODULES):
        return
    for full in ctx.aliases.values():
        if "obs" in full.split(".") or full.endswith("get_tracer"):
            return
    yield Diagnostic(
        rule="obs/uninstrumented-entrypoint",
        severity=Severity.ERROR,
        message=(
            f"{ctx.relpath} is a span-instrumented entry point (docs/"
            "OBSERVABILITY.md) but no longer imports repro.obs; restore "
            "get_tracer()/span instrumentation"
        ),
        location=SourceLocation(path=ctx.path),
    )


# ---------------------------------------------------------------------------
# schema rules


@sanitize_rule(
    "schema/missing-version",
    Severity.ERROR,
    "a schema-bearing module without an integer version constant",
)
def check_missing_version(ctx: "FileContext") -> Iterator[Diagnostic]:
    """Every wire format names its version (``*_FORMAT``/``*_VERSION``)."""
    if not ctx.in_scope(SCHEMA_MODULES):
        return
    if module_schema(ctx).version is None:
        yield Diagnostic(
            rule="schema/missing-version",
            severity=Severity.ERROR,
            message=(
                f"{ctx.relpath} owns a persisted format but declares no "
                "module-level integer version constant (ALL_CAPS name "
                "containing FORMAT/VERSION/SCHEMA); readers cannot detect "
                "drift without one"
            ),
            location=SourceLocation(path=ctx.path),
        )


@sanitize_rule(
    "schema/fingerprint-drift",
    Severity.ERROR,
    "serialized dataclass fields changed without a version bump",
)
def check_fingerprint_drift(ctx: "FileContext") -> Iterator[Diagnostic]:
    """Compare the module's AST against the pinned schema registry."""
    if not ctx.in_scope(SCHEMA_MODULES):
        return
    schema = module_schema(ctx)
    entry = ctx.registry.get("modules", {}).get(ctx.relpath)
    if entry is None:
        yield Diagnostic(
            rule="schema/fingerprint-drift",
            severity=Severity.ERROR,
            message=(
                f"{ctx.relpath} is not pinned in the schema registry; "
                "run `repro sanitize --fix` to pin its serialized "
                "dataclasses"
            ),
            location=SourceLocation(path=ctx.path),
        )
        return
    pinned_version = entry.get("version")
    version_matches = (
        schema.version is not None
        and pinned_version is not None
        and schema.version[1] == pinned_version
    )
    if (
        schema.version is not None
        and pinned_version is not None
        and schema.version[1] != pinned_version
    ):
        yield Diagnostic(
            rule="schema/fingerprint-drift",
            severity=Severity.ERROR,
            message=(
                f"{schema.version[0]} = {schema.version[1]} does not "
                f"match the registry pin {pinned_version}; re-pin with "
                "`repro sanitize --fix`"
            ),
            location=SourceLocation(path=ctx.path, line=schema.version[2]),
        )
    pinned_classes = entry.get("classes", {})
    for name in sorted(pinned_classes):
        if name not in schema.classes:
            yield Diagnostic(
                rule="schema/fingerprint-drift",
                severity=Severity.ERROR,
                message=(
                    f"serialized dataclass {name} vanished from "
                    f"{ctx.relpath}; stored artifacts still carry its "
                    "payloads -- bump the version constant and re-pin "
                    "with `repro sanitize --fix`"
                ),
                location=SourceLocation(path=ctx.path),
            )
            continue
        current, line = schema.classes[name]
        if list(current) != pinned_classes[name]:
            hint = (
                "bump the module's version constant, add a roundtrip "
                "test, then re-pin with `repro sanitize --fix`"
                if version_matches
                else "re-pin with `repro sanitize --fix`"
            )
            yield Diagnostic(
                rule="schema/fingerprint-drift",
                severity=Severity.ERROR,
                message=(
                    f"fields of {name} drifted from the pinned "
                    f"{pinned_classes[name]} to {list(current)}"
                    + (
                        " without a version bump; " + hint
                        if version_matches
                        else "; " + hint
                    )
                ),
                location=SourceLocation(path=ctx.path, line=line),
            )
    for name in sorted(schema.classes):
        if name not in pinned_classes:
            _, line = schema.classes[name]
            yield Diagnostic(
                rule="schema/fingerprint-drift",
                severity=Severity.ERROR,
                message=(
                    f"new serialized dataclass {name} is not pinned in "
                    "the schema registry; pin it (and its roundtrip "
                    "test) with `repro sanitize --fix`"
                ),
                location=SourceLocation(path=ctx.path, line=line),
            )
