"""Source-tree diagnostics: file/line/column locations.

The record type, severities, fix-its and ordering are the shared ones
from :mod:`repro.diagnostics` (also used by :mod:`repro.lint`); this
module contributes :class:`SourceLocation`, the location flavour that
points into Python source instead of into a comparator network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..diagnostics import Diagnostic, FixIt, Severity

__all__ = ["Severity", "FixIt", "Diagnostic", "SourceLocation"]


@dataclass(frozen=True)
class SourceLocation:
    """Where in the source tree a diagnostic points.

    ``path`` is the file as given to the analyzer (kept relative so
    reports are machine-portable); ``line`` is 1-based, ``col`` 0-based
    (both straight off the AST node).  ``line`` may be ``None`` for
    whole-file findings (e.g. a module missing its version constant).
    """

    path: str
    line: int | None = None
    col: int | None = None

    def format(self) -> str:
        """Render like ``repro/core/collision.py:188:15``."""
        parts = [self.path]
        if self.line is not None:
            parts.append(str(self.line))
            if self.col is not None:
                parts.append(str(self.col))
        return ":".join(parts)

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible dict (omits unset fields)."""
        doc: dict[str, Any] = {"path": self.path}
        if self.line is not None:
            doc["line"] = self.line
        if self.col is not None:
            doc["col"] = self.col
        return doc

    @property
    def sort_key(self) -> tuple[str, int, int]:
        """Report order within a severity: path, then line, then column."""
        return (
            self.path,
            self.line if self.line is not None else -1,
            self.col if self.col is not None else -1,
        )
