"""Serialized-format drift detection for the repro wire schemas.

The repo persists several JSON formats whose readers live far from
their writers: non-sorting certificates (archived by the farm store and
re-verified on every cache hit), job documents (hashed into artifact
addresses), campaign specs, trace records.  Silently adding a field to
one of these dataclasses changes the wire format -- and, for jobs, the
*content hash*, orphaning every previously stored artifact -- without
any test noticing until a resumed campaign misbehaves.

The contract enforced here: every schema-bearing module declares an
integer version constant (``CERTIFICATE_FORMAT``, ``JOB_FORMAT``,
``SCHEMA_VERSION``, ...), and the field lists of its serialized
dataclasses are pinned in a checked-in registry
(``schema_registry.json``, next to this module).  The ``schema/*``
rules compare the AST against the registry; changing a pinned field set
is an error until the module's version constant is bumped and the
registry re-pinned with ``repro sanitize --fix`` -- which refuses to
re-pin changed fields while the version stands still, so the bump
cannot be skipped.

A class is *tracked* when it is a ``@dataclass`` that defines
``to_json`` in its own body, or subclasses a tracked class of the same
module (the ``Job`` hierarchy); ``ClassVar`` annotations are excluded
from the pinned fields, matching :func:`dataclasses.fields`.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..errors import SanitizeError

if TYPE_CHECKING:  # pragma: no cover - types only
    from .engine import FileContext

__all__ = [
    "REGISTRY_VERSION",
    "REGISTRY_PATH",
    "ModuleSchema",
    "load_registry",
    "module_schema",
    "collect_schemas",
    "updated_registry",
    "write_registry",
]

#: Version of the registry document format; bump on breaking change.
REGISTRY_VERSION = 1

#: The packaged registry pinning the live schemas.
REGISTRY_PATH = Path(__file__).with_name("schema_registry.json")

#: Module-level ``NAME = <int>`` constants recognised as schema versions.
_VERSION_NAME = re.compile(r"^[A-Z][A-Z0-9_]*$")
_VERSION_HINTS = ("FORMAT", "VERSION", "SCHEMA")


@dataclass(frozen=True)
class ModuleSchema:
    """What the AST says about one schema-bearing module.

    ``version`` is ``(constant name, value, line)`` or ``None``;
    ``classes`` maps tracked dataclass names to ``(fields, line)``.
    """

    version: tuple[str, int, int] | None
    classes: dict[str, tuple[tuple[str, ...], int]]


def load_registry(path: str | Path = REGISTRY_PATH) -> dict[str, Any]:
    """Read and validate the schema fingerprint registry."""
    p = Path(path)
    try:
        doc = json.loads(p.read_text())
    except OSError as exc:
        raise SanitizeError(
            f"cannot read schema registry {p}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise SanitizeError(
            f"schema registry {p} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict) or doc.get("version") != REGISTRY_VERSION:
        raise SanitizeError(
            f"schema registry {p} must be an object with version = "
            f"{REGISTRY_VERSION}"
        )
    if not isinstance(doc.get("modules"), dict):
        raise SanitizeError(f"schema registry {p}: 'modules' must be an object")
    return doc


def _is_version_constant(name: str) -> bool:
    return bool(_VERSION_NAME.match(name)) and any(
        hint in name for hint in _VERSION_HINTS
    )


def _find_version(tree: ast.Module) -> tuple[str, int, int] | None:
    """The first module-level ``ALL_CAPS_*FORMAT* = <int>`` assignment."""
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and _is_version_constant(target.id)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
                and not isinstance(value.value, bool)
            ):
                return (target.id, value.value, stmt.lineno)
    return None


def _is_dataclass_decorated(ctx: "FileContext", node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        resolved = ctx.resolve(target)
        if resolved in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _class_fields(node: ast.ClassDef) -> tuple[str, ...]:
    """Annotated instance fields, in declaration order, sans ClassVars."""
    fields: list[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        if "ClassVar" in ast.dump(stmt.annotation):
            continue
        fields.append(stmt.target.id)
    return tuple(fields)


def module_schema(ctx: "FileContext") -> ModuleSchema:
    """Extract the version constant and tracked dataclasses of one file."""
    classes: dict[str, tuple[tuple[str, ...], int]] = {}
    for stmt in ctx.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        if not _is_dataclass_decorated(ctx, stmt):
            continue
        has_to_json = any(
            isinstance(item, ast.FunctionDef) and item.name == "to_json"
            for item in stmt.body
        )
        subclasses_tracked = any(
            isinstance(base, ast.Name) and base.id in classes
            for base in stmt.bases
        )
        if not has_to_json and not subclasses_tracked:
            continue
        inherited: tuple[str, ...] = ()
        for base in stmt.bases:
            if isinstance(base, ast.Name) and base.id in classes:
                inherited = classes[base.id][0]
                break
        own = _class_fields(stmt)
        fields = inherited + tuple(f for f in own if f not in inherited)
        classes[stmt.name] = (fields, stmt.lineno)
    return ModuleSchema(version=_find_version(ctx.tree), classes=classes)


def collect_schemas(files: "list[Path]") -> dict[str, ModuleSchema]:
    """AST schemas for the schema-bearing modules among ``files``.

    Keyed by anchored path; files that are not in ``SCHEMA_MODULES``
    (or do not parse) are skipped.  This is the discovery step behind
    ``repro sanitize --fix``.
    """
    from .engine import FileContext, SanitizeConfig, anchored_path
    from .rules import SCHEMA_MODULES

    schemas: dict[str, ModuleSchema] = {}
    for f in files:
        rel = anchored_path(f)
        if rel not in SCHEMA_MODULES:
            continue
        try:
            source = Path(f).read_text()
            tree = ast.parse(source)
        except (OSError, UnicodeDecodeError, SyntaxError):
            continue
        ctx = FileContext(
            source, Path(f).as_posix(), tree, SanitizeConfig(), registry={}
        )
        schemas[rel] = module_schema(ctx)
    return schemas


def updated_registry(
    schemas: dict[str, ModuleSchema],
    registry: dict[str, Any],
) -> tuple[dict[str, Any], list[str]]:
    """Re-pin the registry from the current tree, guarding the bump rule.

    ``schemas`` maps anchored module paths to their AST schemas.
    Returns ``(new registry document, refusals)``: a module whose
    pinned class fields changed while its version constant value did
    not is *kept at its old pin* and reported in ``refusals`` -- the
    caller surfaces those as persisting errors, making the version bump
    unskippable.  New modules and new classes pin freely.
    """
    old_modules: dict[str, Any] = registry.get("modules", {})
    new_modules: dict[str, Any] = {}
    refusals: list[str] = []
    for rel in sorted(schemas):
        schema = schemas[rel]
        old = old_modules.get(rel)
        version = schema.version
        entry: dict[str, Any] = {
            "version_constant": version[0] if version else None,
            "version": version[1] if version else None,
            "classes": {
                name: list(schema.classes[name][0])
                for name in sorted(schema.classes)
            },
        }
        if old is not None and version is not None:
            bumped = old.get("version") != version[1]
            old_classes = old.get("classes", {})
            for name in sorted(schema.classes):
                pinned = old_classes.get(name)
                current = list(schema.classes[name][0])
                if pinned is not None and pinned != current and not bumped:
                    refusals.append(
                        f"{rel}: fields of {name} changed but "
                        f"{version[0]} is still {version[1]}; bump it "
                        "before re-pinning"
                    )
                    entry["classes"][name] = pinned
                    entry["version"] = old.get("version")
        new_modules[rel] = entry
    # modules that vanished from the tree drop out of the registry
    return ({"version": REGISTRY_VERSION, "modules": new_modules}, refusals)


def write_registry(doc: dict[str, Any], path: str | Path = REGISTRY_PATH) -> None:
    """Write the registry with stable formatting and a trailing newline."""
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
