"""Sanitize reports: aggregation, text rendering, JSON rendering.

A :class:`SanitizeReport` is the result of one sanitize run over a set
of files: the sorted diagnostics plus how many findings the baseline
suppressed.  The severity accessors, summaries and exit-code convention
come from :class:`repro.diagnostics.DiagnosticReport`, shared with
:mod:`repro.lint` reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..diagnostics import DiagnosticReport
from .diagnostics import Diagnostic

__all__ = ["SanitizeReport"]


@dataclass
class SanitizeReport(DiagnosticReport):
    """The outcome of sanitizing a set of source files.

    ``targets`` are the paths as requested, ``files`` the number of
    Python files actually analysed, ``suppressed`` the count of
    baseline-grandfathered findings hidden from ``diagnostics`` (kept
    visible here so a grandfathered tree never reads as clean).
    """

    targets: list[str] = field(default_factory=list)
    files: int = 0
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0

    def format_text(self) -> str:
        """Full human-readable report."""
        return self.render_text(
            f"sanitize {' '.join(self.targets)}: "
            f"{self.files} file{'s' if self.files != 1 else ''}"
        )

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible report document."""
        return {
            "targets": self.targets,
            "files": self.files,
            **self.json_tail(),
        }
