"""The sanitize engine: file discovery, shared per-file passes, rules.

Mirrors :mod:`repro.lint.engine` with the analysis target swapped: the
input is Python source from the repro tree itself, parsed with the
stdlib :mod:`ast` (zero new dependencies).  Entry points:

* :func:`sanitize_source` -- analyse one in-memory source string under a
  virtual path (the fixture-corpus and unit-test entry point);
* :func:`sanitize_file` -- analyse one file on disk;
* :func:`sanitize_paths` -- walk files/directories in deterministic
  (sorted) order, apply the checked-in baseline, and aggregate a
  :class:`~repro.sanitize.report.SanitizeReport`.

Shared passes (import-alias resolution, module-level name collection,
suppression pragmas) are computed lazily and at most once per file via
:class:`FileContext`, so every rule reads cached results.  Unparseable
files become ``parse/syntax-error`` diagnostics instead of stack
traces, mirroring the lenient document path of the network linter.

Determinism contract: the report depends only on the *set* of files and
their contents -- never on visit order, dict order, or the host -- so
two runs over the same tree are bit-identical (property-tested in
``tests/sanitize/test_determinism.py``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..errors import SanitizeError
from .baseline import Baseline
from .diagnostics import Diagnostic, Severity, SourceLocation

__all__ = [
    "SanitizeConfig",
    "FileContext",
    "anchored_path",
    "sanitize_source",
    "sanitize_file",
    "sanitize_paths",
]

#: ``# sanitize: ok`` or ``# sanitize: ok[prefix, prefix]`` on a line
#: suppresses findings anchored there (bracketed form: only matching
#: rule-id prefixes).
_PRAGMA = re.compile(r"#\s*sanitize:\s*ok(?:\[([^\]]*)\])?")


@dataclass(frozen=True)
class SanitizeConfig:
    """Tunables for one sanitize run.

    ``select`` optionally restricts to rules whose id starts with one of
    the given prefixes.  ``schema_registry`` overrides the packaged
    schema fingerprint registry (tests inject fixture registries here);
    ``None`` loads ``schema_registry.json`` from the package.
    """

    select: tuple[str, ...] | None = None
    schema_registry: dict[str, Any] | None = None

    def rule_enabled(self, rule_id: str) -> bool:
        """True iff ``rule_id`` passes the ``select`` filter."""
        if not self.select:
            return True
        return any(rule_id.startswith(prefix) for prefix in self.select)


def anchored_path(path: str | Path) -> str:
    """Normalise a file path to its ``repro/...`` suffix.

    Rule scopes and baseline fingerprints are keyed by this anchored
    form so they are independent of where the tree is checked out
    (``src/repro/core/x.py`` and ``/ci/build/src/repro/core/x.py`` both
    anchor to ``repro/core/x.py``).  Paths without a ``repro`` segment
    fall back to the bare file name.
    """
    parts = Path(path).as_posix().split("/")
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    return parts[-1]


class FileContext:
    """Lazily-computed shared state handed to every rule for one file."""

    def __init__(
        self,
        source: str,
        path: str,
        tree: ast.Module,
        config: SanitizeConfig,
        registry: dict[str, Any] | None = None,
    ):
        self.source = source
        #: The path as given (what diagnostics display).
        self.path = path
        #: The ``repro/...``-anchored path (what rule scopes match on).
        self.relpath = anchored_path(path)
        self.tree = tree
        self.config = config
        #: Parsed schema fingerprint registry (``schema/*`` rules).
        self.registry = registry if registry is not None else {}

    @cached_property
    def lines(self) -> list[str]:
        """Source split into lines (1-based access via :meth:`line_text`)."""
        return self.source.splitlines()

    def line_text(self, line: int | None) -> str:
        """The stripped text of a 1-based source line (or ``""``)."""
        if line is None or not (1 <= line <= len(self.lines)):
            return ""
        return self.lines[line - 1].strip()

    @cached_property
    def module(self) -> str:
        """Dotted module name derived from the anchored path."""
        rel = self.relpath
        if rel.endswith(".py"):
            rel = rel[: -len(".py")]
        parts = [p for p in rel.split("/") if p]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    @cached_property
    def aliases(self) -> dict[str, str]:
        """Imported-name map: local alias -> fully-qualified dotted name.

        Collected over the whole file (the tree under analysis imports
        lazily inside functions); relative imports are resolved against
        :attr:`module`, so ``from ..errors import ReproError`` inside
        ``repro/core/x.py`` maps ``ReproError`` to
        ``repro.errors.ReproError``.
        """
        aliases: dict[str, str] = {}
        parts = self.module.split(".") if self.module else []
        # An ``__init__.py``'s module name already IS its package, so a
        # level-1 relative import resolves against it, not its parent.
        if Path(self.relpath).name == "__init__.py":
            pkg = parts
        else:
            pkg = parts[:-1]
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.asname:
                        aliases[a.asname] = a.name
                    else:
                        root = a.name.split(".")[0]
                        aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = pkg[: len(pkg) - (node.level - 1)]
                    head = ".".join(base + ([node.module] if node.module else []))
                else:
                    head = node.module or ""
                for a in node.names:
                    if a.name == "*":
                        continue
                    full = f"{head}.{a.name}" if head else a.name
                    aliases[a.asname or a.name] = full
        return aliases

    def dotted(self, node: ast.AST) -> str | None:
        """The literal dotted form of a Name/Attribute chain, if any."""
        if isinstance(node, ast.Attribute):
            base = self.dotted(node.value)
            return f"{base}.{node.attr}" if base else None
        if isinstance(node, ast.Name):
            return node.id
        return None

    def resolve(self, node: ast.AST) -> str | None:
        """Qualified name with the root alias expanded (or the raw name).

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when ``np`` was imported as numpy;
        an unimported root (builtin, local variable) passes through
        unchanged.
        """
        name = self.dotted(node)
        if name is None:
            return None
        root, _, rest = name.partition(".")
        target = self.aliases.get(root)
        if target is None:
            return name
        return f"{target}.{rest}" if rest else target

    def resolve_imported(self, node: ast.AST) -> str | None:
        """Like :meth:`resolve`, but ``None`` unless the root is imported.

        Module-membership rules (``random.*``, ``numpy.random.*``) use
        this so a local variable that happens to shadow a module name
        (``rng.random()``) cannot false-positive.
        """
        name = self.dotted(node)
        if name is None:
            return None
        root, _, rest = name.partition(".")
        target = self.aliases.get(root)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    @cached_property
    def module_level_names(self) -> frozenset[str]:
        """Names bound by plain assignments in the module body."""
        names: set[str] = set()
        for stmt in self.tree.body:
            for target in _assign_targets(stmt):
                names.add(target)
        return frozenset(names)

    @cached_property
    def function_nodes(self) -> list[ast.AST]:
        """Every function/lambda body node, for function-scope rules."""
        funcs: list[ast.AST] = []
        for node in ast.walk(self.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                funcs.append(node)
        return funcs

    def in_scope(self, prefixes: Iterable[str]) -> bool:
        """True iff this file's anchored path falls under any prefix."""
        rel = self.relpath
        return any(
            rel == p or (p.endswith("/") and rel.startswith(p))
            for p in prefixes
        )

    def suppressed(self, diag: Diagnostic) -> bool:
        """True iff a ``# sanitize: ok`` pragma covers this diagnostic."""
        loc = diag.location
        line = getattr(loc, "line", None)
        if line is None or not (1 <= line <= len(self.lines)):
            return False
        match = _PRAGMA.search(self.lines[line - 1])
        if match is None:
            return False
        prefixes = match.group(1)
        if prefixes is None:
            return True
        return any(
            diag.rule.startswith(p.strip())
            for p in prefixes.split(",")
            if p.strip()
        )


def _assign_targets(stmt: ast.stmt) -> Iterator[str]:
    """Plain names bound by one module-body statement."""
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                yield target.id
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(stmt.target, ast.Name):
            yield stmt.target.id


def _load_registry(config: SanitizeConfig) -> dict[str, Any]:
    """The schema fingerprint registry (packaged unless overridden)."""
    if config.schema_registry is not None:
        return config.schema_registry
    from .schema import load_registry

    return load_registry()


def sanitize_source(
    source: str,
    path: str,
    config: SanitizeConfig | None = None,
    *,
    registry: dict[str, Any] | None = None,
) -> list[Diagnostic]:
    """Run every enabled rule over one source string.

    ``path`` locates the findings *and* selects rule scopes (the
    determinism rules only apply under ``repro/core/`` etc.), so tests
    can exercise scoped rules on fixture snippets by passing virtual
    paths like ``"repro/core/example.py"``.  Returns the pragma-filtered
    diagnostics, sorted.
    """
    cfg = config or SanitizeConfig()
    if registry is None:
        registry = _load_registry(cfg)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="parse/syntax-error",
                severity=Severity.ERROR,
                message=f"cannot parse: {exc.msg}",
                location=SourceLocation(
                    path=path, line=exc.lineno, col=exc.offset
                ),
            )
        ]
    from .rules import RULES

    ctx = FileContext(source, path, tree, cfg, registry=registry)
    diagnostics: list[Diagnostic] = []
    for rule in RULES.values():
        if not cfg.rule_enabled(rule.id):
            continue
        diagnostics.extend(rule.check(ctx))
    diagnostics = [d for d in diagnostics if not ctx.suppressed(d)]
    diagnostics.sort(key=lambda d: d.sort_key)
    return diagnostics


def sanitize_file(
    path: str | Path,
    config: SanitizeConfig | None = None,
    *,
    registry: dict[str, Any] | None = None,
) -> list[Diagnostic]:
    """Analyse one file on disk (raises ``SanitizeError`` if unreadable)."""
    p = Path(path)
    try:
        source = p.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        raise SanitizeError(f"cannot read {p}: {exc}") from exc
    return sanitize_source(source, p.as_posix(), config, registry=registry)


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Directories are walked recursively for ``*.py``; ``__pycache__`` is
    skipped.  The sort (by posix path string) is what makes the report
    independent of filesystem enumeration order.
    """
    files: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.update(
                f for f in p.rglob("*.py") if "__pycache__" not in f.parts
            )
        elif p.is_file():
            files.add(p)
        else:
            raise SanitizeError(f"no such file or directory: {p}")
    return sorted(files, key=lambda f: f.as_posix())


def sanitize_paths(
    paths: Iterable[str | Path],
    config: SanitizeConfig | None = None,
    baseline: Baseline | None = None,
):
    """Analyse a set of files/directories and aggregate the report.

    Baseline-matched findings are suppressed from the report (and hence
    from the exit code) but counted in ``report.suppressed`` so a
    grandfathered tree is visibly grandfathered, not silently clean.
    """
    from .report import SanitizeReport

    cfg = config or SanitizeConfig()
    registry = _load_registry(cfg)
    files = discover_files(paths)
    diagnostics: list[Diagnostic] = []
    suppressed = 0
    for f in files:
        try:
            source = f.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            raise SanitizeError(f"cannot read {f}: {exc}") from exc
        lines = source.splitlines()
        for diag in sanitize_source(
            source, f.as_posix(), cfg, registry=registry
        ):
            if baseline is not None and baseline.matches(
                diag, _line_text(lines, diag)
            ):
                suppressed += 1
                continue
            diagnostics.append(diag)
    diagnostics.sort(key=lambda d: d.sort_key)
    return SanitizeReport(
        targets=sorted(str(p) for p in paths),
        files=len(files),
        diagnostics=diagnostics,
        suppressed=suppressed,
    )


def _line_text(lines: list[str], diag: Diagnostic) -> str:
    """The stripped source line a diagnostic anchors to (baseline key)."""
    line = getattr(diag.location, "line", None)
    if line is None or not (1 <= line <= len(lines)):
        return ""
    return lines[line - 1].strip()
